// Package server implements the sisrv HTTP API: JSON endpoints over a
// long-lived si.Index, so the open/parse/decompose cost of querying is
// amortized across requests instead of being paid per process (the
// serving direction the ROADMAP calls out; cmd/sisrv is the binary).
//
// Endpoints:
//
//	GET  /search?q=Q&limit=N&offset=M&timeout=D   one query's match window
//	                           (&explain=1 adds the planner's strategy and
//	                           per-piece estimated vs. actual cardinality)
//	GET  /stream?q=Q&limit=N&offset=M&timeout=D   same, streamed as NDJSON
//	GET  /count?q=Q&timeout=D                     exact match count only
//	POST /batch                {"queries": [...]} evaluated as one batch:
//	                           shared cover keys are fetched once per shard
//	POST /append               bracketed trees (one per line) indexed into
//	                           a fresh segment and served immediately
//	POST /delete               {"tids": [...]} tombstoned; the trees stop
//	                           matching on the very next query
//	POST /compact              merge surviving trees into one segment and
//	                           reclaim tombstoned space
//	POST /reload               pick up segments and tombstones published
//	                           by another process
//	GET  /healthz              liveness + corpus summary
//	GET  /readyz               readiness: 503 while draining for shutdown
//	GET  /stats                index info and cumulative serving counters
//	GET  /manifest             on-disk manifest, for follower replication
//	GET  /segment/{name}/{file} published segment payloads, range-served
//
// /append, /delete, /compact and /reload are the live-update surface:
// each publishes a new segment set (or tombstone set) atomically and
// swaps it in without interrupting running queries (each query is
// pinned to the segment set it started on), so the very next /search
// sees the change with zero downtime. docs/SEGMENTS.md walks the whole
// lifecycle against a running server.
//
// Every query evaluates under the request's context, bounded by the
// server's default timeout (Config.Timeout) unless the request asks
// for a shorter one with timeout= (a Go duration, e.g. 500ms); a
// client disconnect cancels evaluation mid-join. limit/offset push
// down into the v2 search path: a sharded index stops consulting
// shards — and fetching their posting lists — once the window is
// full, and inside each shard the streaming join stops decoding and
// joining postings at the same point. /stream evaluates incrementally
// end to end: the first NDJSON line is written while the join is
// still running.
//
// All responses are JSON (NDJSON for /stream); errors are
// {"error": "..."} with a 4xx/5xx status. The handler is safe for
// concurrent use — si.Index is — and holds no per-request state.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/query"
	"repro/si"
)

// Defaults for the zero values of Config.
const (
	DefaultMaxMatches    = 1000
	DefaultMaxBatch      = 256
	DefaultMaxBody       = 1 << 20
	DefaultMaxAppendBody = 32 << 20
)

// Config bounds what one request may cost the server.
type Config struct {
	// MaxMatches caps the matches returned per query; the limit pushes
	// down into the engine, which stops merging shard results beyond
	// it. 0 means DefaultMaxMatches; negative means no cap.
	MaxMatches int
	// MaxBatch caps the queries accepted by one /batch request.
	// 0 means DefaultMaxBatch.
	MaxBatch int
	// MaxBody caps the /batch request body in bytes. 0 means
	// DefaultMaxBody.
	MaxBody int64
	// MaxAppendBody caps the /append request body in bytes. 0 means
	// DefaultMaxAppendBody; negative disables the whole mutation
	// surface — /append, /delete and /compact answer 403.
	MaxAppendBody int64
	// Timeout is the default evaluation deadline per request; a
	// request's timeout= parameter may shorten it but never extend it.
	// 0 means no server-imposed deadline.
	Timeout time.Duration
	// MaxInflight bounds the number of concurrently evaluating query
	// requests (/search, /count, /stream, /batch). Excess requests are
	// rejected immediately with 429 and a Retry-After header — nothing
	// queues, so a saturated node degrades with fast rejections instead
	// of collapsing under unbounded goroutines. 0 means unlimited.
	MaxInflight int
	// Dir is the index directory the server is serving. When set, the
	// replication surface is enabled: GET /manifest serves the on-disk
	// manifest and GET /segment/{name}/{file} range-serves published
	// segment files, so a follower node can pull the segment set and
	// /reload it. Empty disables both endpoints (404).
	Dir string
}

// normalize fills in defaults for zero fields.
func (c *Config) normalize() {
	if c.MaxMatches == 0 {
		c.MaxMatches = DefaultMaxMatches
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxBody == 0 {
		c.MaxBody = DefaultMaxBody
	}
	if c.MaxAppendBody == 0 {
		c.MaxAppendBody = DefaultMaxAppendBody
	}
}

// Server is the sisrv HTTP handler over one open index.
type Server struct {
	ix      *si.Index
	cfg     Config
	mux     *http.ServeMux
	started time.Time

	// inflight is the admission-control semaphore over query
	// evaluations; nil means unlimited. Acquisition never blocks: a
	// full semaphore answers 429 instead of queueing the request.
	inflight chan struct{}
	// draining flips when graceful shutdown begins: /readyz turns 503
	// so routers and load balancers stop sending new work while
	// in-flight requests finish.
	draining atomic.Bool

	requests atomic.Uint64 // HTTP requests accepted
	queries  atomic.Uint64 // queries evaluated (batch elements count individually)
	errors   atomic.Uint64 // requests answered with an error status
	rejected atomic.Uint64 // requests shed by admission control (429)
}

// New returns a handler serving ix. The index must stay open for the
// server's lifetime; the caller retains ownership and closes it.
func New(ix *si.Index, cfg Config) *Server {
	cfg.normalize()
	s := &Server{ix: ix, cfg: cfg, mux: http.NewServeMux(), started: time.Now()}
	if cfg.MaxInflight > 0 {
		s.inflight = make(chan struct{}, cfg.MaxInflight)
	}
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/stream", s.handleStream)
	s.mux.HandleFunc("/count", s.handleCount)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/append", s.handleAppend)
	s.mux.HandleFunc("/delete", s.handleDelete)
	s.mux.HandleFunc("/compact", s.handleCompact)
	s.mux.HandleFunc("/reload", s.handleReload)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/manifest", s.handleManifest)
	s.mux.HandleFunc("/segment/", s.handleSegment)
	return s
}

// ServeHTTP dispatches to the endpoint handlers. Every request gets a
// request ID — the client's X-Request-Id when it sent a sane one, a
// fresh one otherwise — echoed in the response headers, carried in the
// request context for error logs and stream summaries, and forwarded
// by the router on per-node subrequests so one query is traceable
// across the cluster.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	rid := RequestID(r)
	w.Header().Set(RequestIDHeader, rid)
	r = r.WithContext(WithRequestID(r.Context(), rid))
	s.mux.ServeHTTP(w, r)
}

// SetDraining marks the server as draining (true) or serving (false).
// While draining, /readyz answers 503 so routers and load balancers
// take the node out of rotation; already-accepted requests are
// unaffected. Call it when graceful shutdown begins, before
// http.Server.Shutdown waits for in-flight requests.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// admit reserves an admission-control slot for one query evaluation,
// answering 429 with a Retry-After header when the server is already
// at MaxInflight. The returned release must be called exactly once
// when the evaluation (including response writing, for /stream)
// finishes; ok=false means the rejection response was already written.
// Admission never queues: the goroutine count of a saturated server
// stays bounded by MaxInflight plus the connections the HTTP server
// itself accepts.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.inflight == nil {
		return func() {}, true
	}
	select {
	case s.inflight <- struct{}{}:
		return func() { <-s.inflight }, true
	default:
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.fail(w, r, http.StatusTooManyRequests,
			fmt.Sprintf("server at capacity (%d evaluations in flight); retry shortly", s.cfg.MaxInflight))
		return nil, false
	}
}

// MatchJSON is one query match on the wire.
type MatchJSON struct {
	// TID is the tree identifier.
	TID uint32 `json:"tid"`
	// Root is the pre-order rank of the node the query root matched.
	Root uint32 `json:"root"`
}

// StatsJSON reports how one query executed (the wire form of
// si.SearchStats).
type StatsJSON struct {
	// PostingFetches is the number of physical posting-list reads the
	// query issued.
	PostingFetches uint64 `json:"posting_fetches"`
	// PlanCacheHit reports the query skipped parse/decomposition.
	PlanCacheHit bool `json:"plan_cache_hit"`
	// ShardsConsulted is how many index partitions were evaluated;
	// under a limit this can be less than the shard count.
	ShardsConsulted int `json:"shards_consulted"`
	// JoinRows is the join work done: posting entries decoded plus
	// intermediate join rows produced. Limits push into the join, so a
	// truncated query reports fewer rows than its unlimited run.
	JoinRows uint64 `json:"join_rows"`
	// Strategy is the execution strategy the planner chose (filter,
	// stack, block or stream); present only with explain=1 on an index
	// built with statistics.
	Strategy string `json:"strategy,omitempty"`
	// EstimatedRows is the planner's estimated match cardinality;
	// present only with explain=1 on a costed plan.
	EstimatedRows uint64 `json:"estimated_rows,omitempty"`
	// Pieces lists each cover piece's estimated vs. actually decoded
	// posting entries; present only with explain=1.
	Pieces []PieceJSON `json:"pieces,omitempty"`
}

// PieceJSON is one cover piece's explain row (the wire form of
// si.PieceStat).
type PieceJSON struct {
	// Key is the piece's index key (the flattened subtree).
	Key string `json:"key"`
	// Est is the planner's estimated posting-entry count for the key.
	Est uint64 `json:"est"`
	// Actual is the number of posting entries execution decoded; under
	// cost-ordered early abort or a limit it can be far below Est.
	Actual uint64 `json:"actual"`
}

// statsJSON converts engine stats to the wire form.
func statsJSON(st si.SearchStats) *StatsJSON {
	out := &StatsJSON{
		PostingFetches:  st.PostingFetches,
		PlanCacheHit:    st.PlanCacheHit,
		ShardsConsulted: st.ShardsConsulted,
		JoinRows:        st.JoinRows,
		Strategy:        st.Strategy,
		EstimatedRows:   st.EstimatedRows,
	}
	for _, p := range st.Pieces {
		out.Pieces = append(out.Pieces, PieceJSON{Key: p.Key, Est: p.Est, Actual: p.Actual})
	}
	return out
}

// QueryResult is the per-query payload of /search and /batch.
type QueryResult struct {
	// Query echoes the query text as submitted.
	Query string `json:"query"`
	// Count is the number of matches found before evaluation stopped:
	// the exact total unless Truncated is set, in which case it is a
	// lower bound (early termination is the point of limits — use
	// /count for an always-exact total).
	Count int `json:"count"`
	// Matches lists the requested window of matches in (tid, root)
	// order; omitted by /count and count-only batches.
	Matches []MatchJSON `json:"matches,omitempty"`
	// Truncated reports that a limit stopped evaluation or trimmed the
	// match list, so Count may undercount.
	Truncated bool `json:"truncated,omitempty"`
}

// SearchResponse is the /search and /count response body.
type SearchResponse struct {
	QueryResult
	// Stats reports how the query executed (posting fetches, plan
	// cache, shards consulted); omitted by /count.
	Stats *StatsJSON `json:"stats,omitempty"`
	// TookNS is the server-side evaluation time in nanoseconds.
	TookNS int64 `json:"took_ns"`
}

// StreamSummary is the trailing NDJSON line of /stream, after the
// match lines.
type StreamSummary struct {
	// Done marks the summary line, distinguishing it from match lines.
	Done bool `json:"done"`
	// Count is the number of matches evaluation found before it
	// stopped. Because /stream evaluates incrementally, this is a lower
	// bound on the query's total whenever Truncated is set (a limit was
	// reached, shards went unconsulted, or the evaluation failed
	// mid-stream); use /count for an always-exact total.
	Count int `json:"count"`
	// Truncated: as in QueryResult.
	Truncated bool `json:"truncated,omitempty"`
	// Error reports an evaluation failure that occurred after match
	// lines were already on the wire (the status line was long gone by
	// then); the preceding lines are a valid prefix of the result.
	Error string `json:"error,omitempty"`
	// Stats: as in SearchResponse.
	Stats *StatsJSON `json:"stats,omitempty"`
	// TookNS is the elapsed stream time in nanoseconds — evaluation
	// *interleaved with writing to the client*, since /stream evaluates
	// as it writes. A slow reader inflates it; it is not comparable to
	// /search's evaluation-only took_ns.
	TookNS int64 `json:"took_ns"`
	// RequestID echoes the request's X-Request-Id in the NDJSON body
	// itself, so a consumer that only kept the stream (or a router
	// re-streaming node lines) can still correlate it with server logs.
	RequestID string `json:"request_id,omitempty"`
}

// BatchRequest is the /batch request body.
type BatchRequest struct {
	// Queries are evaluated as one batch; results keep their order.
	Queries []string `json:"queries"`
	// Limit caps matches per query like /search's limit parameter.
	Limit int `json:"limit,omitempty"`
	// Offset skips leading matches per query like /search's offset.
	Offset int `json:"offset,omitempty"`
	// CountOnly omits match lists from all results; counts are exact.
	CountOnly bool `json:"count_only,omitempty"`
	// Timeout bounds the whole batch's evaluation like /search's
	// timeout parameter: a Go duration string (e.g. "500ms"), clamped
	// to the server default when one is set.
	Timeout string `json:"timeout,omitempty"`
}

// BatchResponse is the /batch response body.
type BatchResponse struct {
	// Results holds one entry per submitted query, in order.
	Results []QueryResult `json:"results"`
	// TookNS is the server-side evaluation time for the whole batch.
	TookNS int64 `json:"took_ns"`
}

// HealthResponse is the /healthz response body.
type HealthResponse struct {
	// Status is "ok" whenever the server can answer at all.
	Status string `json:"status"`
	// Trees is the number of indexed trees.
	Trees int `json:"trees"`
	// Shards is the index partition count (1 when unsharded).
	Shards int `json:"shards"`
}

// StatsResponse is the /stats response body.
type StatsResponse struct {
	// Index describes the corpus and build.
	Index IndexStats `json:"index"`
	// Serving holds cumulative counters since the server started.
	Serving ServingStats `json:"serving"`
}

// IndexStats summarizes the served index. Trees counts every stored
// tree including tombstoned ones (it is the tid space); LiveTrees and
// TombstonedTrees split it into searchable trees and reclaim debt, so
// live_trees + tombstoned_trees == trees until a compaction drops the
// debt to zero.
type IndexStats struct {
	Trees           int    `json:"trees"`            // stored trees (tid space, tombstoned included)
	LiveTrees       int    `json:"live_trees"`       // searchable trees (stored minus tombstoned)
	TombstonedTrees int    `json:"tombstoned_trees"` // logically deleted trees awaiting compaction
	Shards          int    `json:"shards"`           // serving partitions (leaves across all segments)
	Segments        int    `json:"segments"`         // live index segments (1 until the first append)
	Generation      int    `json:"generation"`       // manifest publish counter (0 = never appended)
	MSS             int    `json:"mss"`              // maximum indexed subtree size
	Coding          string `json:"coding"`           // posting scheme name
	Keys            int    `json:"keys"`             // unique subtrees indexed
	Postings        int    `json:"postings"`         // total posting records
	IndexBytes      int64  `json:"index_bytes"`      // B+Tree bytes on disk
	DataBytes       int64  `json:"data_bytes"`       // flattened corpus bytes
}

// ServingStats holds the server's and the index's cumulative counters.
type ServingStats struct {
	// UptimeSeconds since New.
	UptimeSeconds int64 `json:"uptime_seconds"`
	// Requests is the number of HTTP requests accepted.
	Requests uint64 `json:"requests"`
	// Queries is the number of queries evaluated (each batch element
	// counts as one).
	Queries uint64 `json:"queries"`
	// Errors is the number of requests answered with an error status.
	Errors uint64 `json:"errors"`
	// Rejected is the number of requests shed by admission control
	// (429); a subset of Errors. Zero on servers without MaxInflight.
	Rejected uint64 `json:"rejected"`
	// MaxInflight echoes the configured admission-control bound
	// (0 = unlimited), so a router or operator reading /stats can tell
	// how close Rejected growth is to expected shedding vs. misconfig.
	MaxInflight int `json:"max_inflight"`
	// Stats are the index's counters: posting fetches and plan-cache
	// hits/misses.
	si.Stats
}

// searchParams are the parsed per-request query parameters shared by
// /search, /stream and /count.
type searchParams struct {
	src     string
	limit   int
	offset  int
	timeout time.Duration
	explain bool
}

// boundParams is the one validation and clamping path for the
// limit/offset/timeout triple every query endpoint accepts: /search,
// /stream and /count (via parseParams) and /batch (from its JSON body)
// all pass through here, so the server-side match cap and the
// parameter sanity rules cannot drift between the GET and POST
// surfaces. The returned limit is clamped to Config.MaxMatches, a
// negative offset is rejected, and a timeout must be a positive Go
// duration.
func (s *Server) boundParams(limit, offset int, timeout string) (int, int, time.Duration, error) {
	if offset < 0 {
		return 0, 0, 0, fmt.Errorf("bad offset %d (must be >= 0)", offset)
	}
	var d time.Duration
	if timeout != "" {
		td, err := time.ParseDuration(timeout)
		if err != nil || td <= 0 {
			return 0, 0, 0, fmt.Errorf("bad timeout %q (want a positive Go duration, e.g. 500ms)", timeout)
		}
		d = td
	}
	return s.effectiveLimit(limit), offset, d, nil
}

// parseParams validates q, limit, offset and timeout.
func (s *Server) parseParams(r *http.Request) (searchParams, error) {
	var p searchParams
	v := r.URL.Query()
	p.src = v.Get("q")
	if p.src == "" {
		return p, fmt.Errorf("missing q parameter")
	}
	if raw := v.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			return p, fmt.Errorf("bad limit %q", raw)
		}
		p.limit = n
	}
	if raw := v.Get("offset"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			return p, fmt.Errorf("bad offset %q", raw)
		}
		p.offset = n
	}
	if raw := v.Get("explain"); raw != "" {
		b, err := strconv.ParseBool(raw)
		if err != nil {
			return p, fmt.Errorf("bad explain %q (want 1 or 0)", raw)
		}
		p.explain = b
	}
	var err error
	p.limit, p.offset, p.timeout, err = s.boundParams(p.limit, p.offset, v.Get("timeout"))
	return p, err
}

// requestCtx derives the evaluation context: the request's own context
// (cancelled on client disconnect) bounded by the effective timeout —
// the requested one, clamped to the server default when one is set.
func (s *Server) requestCtx(r *http.Request, requested time.Duration) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if requested > 0 && (d <= 0 || requested < d) {
		d = requested
	}
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// searchOptions turns wire params into engine options.
func searchOptions(limit, offset int, countOnly bool) []si.SearchOption {
	var opts []si.SearchOption
	if limit > 0 {
		opts = append(opts, si.WithLimit(limit))
	}
	if offset > 0 {
		opts = append(opts, si.WithOffset(offset))
	}
	if countOnly {
		opts = append(opts, si.WithCountOnly())
	}
	return opts
}

// explainOptions appends WithExplain when the request asked for it.
func explainOptions(opts []si.SearchOption, explain bool) []si.SearchOption {
	if explain {
		opts = append(opts, si.WithExplain())
	}
	return opts
}

// handleSearch serves GET /search?q=Q&limit=N&offset=M&timeout=D.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	res, p, took, ok := s.evaluate(w, r, false)
	if !ok {
		return
	}
	resp := SearchResponse{
		QueryResult: result(p.src, res),
		Stats:       statsJSON(res.Stats),
		TookNS:      took.Nanoseconds(),
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleCount serves GET /count?q=Q&timeout=D through the count-only
// path: the count is exact and no match slice is built server-side.
func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	res, p, took, ok := s.evaluate(w, r, true)
	if !ok {
		return
	}
	resp := SearchResponse{
		QueryResult: QueryResult{Query: p.src, Count: res.Count},
		TookNS:      took.Nanoseconds(),
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// evaluate runs the shared GET-query path for /search and /count.
func (s *Server) evaluate(w http.ResponseWriter, r *http.Request, countOnly bool) (*si.SearchResult, searchParams, time.Duration, bool) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, "use GET")
		return nil, searchParams{}, 0, false
	}
	p, err := s.parseParams(r)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err.Error())
		return nil, p, 0, false
	}
	release, ok := s.admit(w, r)
	if !ok {
		return nil, p, 0, false
	}
	defer release()
	ctx, cancel := s.requestCtx(r, p.timeout)
	defer cancel()
	limit, offset := p.limit, p.offset
	if countOnly {
		limit, offset = 0, 0
	}
	start := time.Now()
	res, err := s.ix.Search(ctx, p.src, explainOptions(searchOptions(limit, offset, countOnly), p.explain)...)
	if err != nil {
		s.fail(w, r, errStatus(err), err.Error())
		return nil, p, 0, false
	}
	s.queries.Add(1)
	return res, p, time.Since(start), true
}

// handleStream serves GET /stream: the same query surface as /search,
// answered as NDJSON — one match object per line, then a summary line
// with the count, truncation flag and stats. Evaluation is genuinely
// incremental (si.Index.SearchStream): each line is produced by
// advancing the streaming join just far enough for the next match and
// flushed immediately, so the first byte reaches the client while
// most of the evaluation — later trees of the current shard, later
// shards entirely — has not happened yet, and a client that
// disconnects stops that work. The summary's Count is therefore a
// lower bound whenever Truncated is set. Failures keep /search's
// status semantics as long as nothing is on the wire: the first match
// is pulled *before* the 200 commits, so planning errors, an expired
// deadline or an I/O failure on the leading shard still answer
// 4xx/5xx. A failure after lines are flowing cannot change the status
// anymore; it is reported in the summary line's error field, with the
// preceding lines a valid prefix of the result.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	p, err := s.parseParams(r)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err.Error())
		return
	}
	// The admission slot is held for the whole handler: /stream
	// evaluates interleaved with writing, so a slow reader is still an
	// in-flight evaluation.
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r, p.timeout)
	defer cancel()
	start := time.Now()
	res, err := s.ix.SearchStream(ctx, p.src, searchOptions(p.limit, p.offset, false)...)
	if err != nil {
		s.fail(w, r, errStatus(err), err.Error())
		return
	}
	next, stop := iter.Pull2(res.All())
	defer stop()
	first, firstErr, ok := next()
	if ok && firstErr != nil {
		// Evaluation died before producing anything: a status line is
		// still possible, so answer like /search would.
		s.fail(w, r, errStatus(firstErr), firstErr.Error())
		return
	}
	s.queries.Add(1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	// Every line flushes: prompt delivery of each match as it is found
	// is this endpoint's contract, and coalescing would hold produced
	// matches hostage to however long the join takes to find the next
	// one. One chunked write per line is the accepted price — the
	// default MaxMatches cap bounds it, and bulk drains belong on
	// /search, which materializes concurrently and writes once.
	var streamErr error
	for m := first; ok; m, streamErr, ok = next() {
		if streamErr != nil {
			break
		}
		if err := enc.Encode(MatchJSON{TID: m.TID, Root: m.Root}); err != nil {
			return // client went away; stopping the iterator stops evaluation
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	stop() // finalize res.Count and res.Stats before the summary
	summary := StreamSummary{
		Done:      true,
		Count:     res.Count,
		Truncated: res.Stats.Truncated,
		Stats:     statsJSON(res.Stats),
		TookNS:    time.Since(start).Nanoseconds(),
		RequestID: RequestIDFrom(r.Context()),
	}
	if streamErr != nil {
		summary.Error = streamErr.Error()
		summary.Truncated = true
		s.errors.Add(1)
	}
	_ = enc.Encode(summary)
	if flusher != nil {
		flusher.Flush()
	}
}

// handleBatch serves POST /batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, r, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, r, http.StatusBadRequest, "bad batch body: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		s.fail(w, r, http.StatusBadRequest, "empty queries")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		s.fail(w, r, http.StatusBadRequest,
			fmt.Sprintf("batch of %d queries exceeds limit %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	// Per-item bounds go through the same validation and MaxMatches
	// clamp as /search's query parameters.
	limit, offset, timeout, err := s.boundParams(req.Limit, req.Offset, req.Timeout)
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if req.CountOnly {
		limit, offset = 0, 0
	}
	release, admitted := s.admit(w, r)
	if !admitted {
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r, timeout)
	defer cancel()
	start := time.Now()
	results, err := s.ix.SearchBatch(ctx, req.Queries, searchOptions(limit, offset, req.CountOnly)...)
	if err != nil {
		s.fail(w, r, errStatus(err), err.Error())
		return
	}
	s.queries.Add(uint64(len(req.Queries)))
	resp := BatchResponse{Results: make([]QueryResult, len(results))}
	for i, res := range results {
		resp.Results[i] = result(req.Queries[i], res)
	}
	resp.TookNS = time.Since(start).Nanoseconds()
	s.writeJSON(w, http.StatusOK, resp)
}

// AppendResponse is the /append response body.
type AppendResponse struct {
	// Trees is the number of trees indexed by this append.
	Trees int `json:"trees"`
	// Segments is the live segment count after the append.
	Segments int `json:"segments"`
	// Generation is the index manifest's publish counter after the
	// append.
	Generation int `json:"generation"`
	// TookNS is the server-side build-and-publish time in nanoseconds.
	TookNS int64 `json:"took_ns"`
}

// handleAppend serves POST /append: the body is a bracketed corpus
// (one tree per line, as sibuild reads), indexed into a fresh segment
// and published atomically — the next /search sees the new trees.
// Running queries are unaffected; they finish on the segment set they
// pinned.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, r, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.cfg.MaxAppendBody < 0 {
		s.fail(w, r, http.StatusForbidden, "append is disabled on this server")
		return
	}
	trees, err := si.ReadTrees(http.MaxBytesReader(w, r.Body, s.cfg.MaxAppendBody))
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, "bad append body: "+err.Error())
		return
	}
	if len(trees) == 0 {
		s.fail(w, r, http.StatusBadRequest, "empty append: need one bracketed tree per line")
		return
	}
	start := time.Now()
	if _, err := s.ix.Append(r.Context(), trees); err != nil {
		s.fail(w, r, errStatus(err), err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, AppendResponse{
		Trees:      len(trees),
		Segments:   s.ix.Segments(),
		Generation: s.ix.Generation(),
		TookNS:     time.Since(start).Nanoseconds(),
	})
}

// DeleteRequest is the /delete request body.
type DeleteRequest struct {
	// TIDs are the tree identifiers to tombstone. Any out-of-range tid
	// rejects the whole request; already-deleted tids are accepted and
	// counted as no-ops.
	TIDs []int `json:"tids"`
}

// DeleteResponse is the /delete response body.
type DeleteResponse struct {
	// Deleted is the number of tids newly tombstoned by this request
	// (already-deleted tids are not re-counted).
	Deleted int `json:"deleted"`
	// LiveTrees is the searchable tree count after the delete.
	LiveTrees int `json:"live_trees"`
	// TombstonedTrees is the total tombstoned tree count after the
	// delete — the space a /compact would reclaim.
	TombstonedTrees int `json:"tombstoned_trees"`
	// Generation is the manifest publish counter after the delete; it
	// does not advance when every tid was already deleted.
	Generation int `json:"generation"`
	// TookNS is the server-side publish time in nanoseconds.
	TookNS int64 `json:"took_ns"`
}

// handleDelete serves POST /delete: the listed trees are tombstoned in
// the manifest and the serving set swaps atomically, so they stop
// matching on the very next query while searches already running
// finish on the snapshot they pinned. Segments are immutable, so the
// trees keep occupying disk until /compact reclaims them. Out-of-range
// tids fail the whole request with 400 before anything is published.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, r, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.cfg.MaxAppendBody < 0 {
		s.fail(w, r, http.StatusForbidden, "index mutation is disabled on this server")
		return
	}
	var req DeleteRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, r, http.StatusBadRequest, "bad delete body: "+err.Error())
		return
	}
	if len(req.TIDs) == 0 {
		s.fail(w, r, http.StatusBadRequest, "empty delete: need tids")
		return
	}
	n := s.ix.NumTrees()
	for _, tid := range req.TIDs {
		if tid < 0 || tid >= n {
			s.fail(w, r, http.StatusBadRequest,
				fmt.Sprintf("tid %d out of range [0, %d)", tid, n))
			return
		}
	}
	start := time.Now()
	deleted, err := s.ix.Delete(r.Context(), req.TIDs...)
	if err != nil {
		s.fail(w, r, errStatus(err), err.Error())
		return
	}
	st := s.ix.Stats()
	s.writeJSON(w, http.StatusOK, DeleteResponse{
		Deleted:         deleted,
		LiveTrees:       st.LiveTrees,
		TombstonedTrees: st.TombstonedTrees,
		Generation:      s.ix.Generation(),
		TookNS:          time.Since(start).Nanoseconds(),
	})
}

// CompactResponse is the /compact response body.
type CompactResponse struct {
	// Compacted reports whether a compaction ran; false means the index
	// was already a single segment with no tombstones.
	Compacted bool `json:"compacted"`
	// Segments is the live segment count afterwards (1 when Compacted).
	Segments int `json:"segments"`
	// Generation is the manifest publish counter afterwards.
	Generation int `json:"generation"`
	// LiveTrees is the searchable tree count afterwards; after a
	// compaction it equals the stored tree count, renumbered 0..n-1.
	LiveTrees int `json:"live_trees"`
	// TookNS is the server-side merge-and-publish time in nanoseconds.
	TookNS int64 `json:"took_ns"`
}

// handleCompact serves POST /compact: the surviving trees of all
// segments are merged into one fresh segment published atomically,
// clearing every tombstone; replaced segment directories are removed
// once their last in-flight query drains. Surviving trees are
// renumbered to contiguous tids, so clients holding tids across a
// compaction must re-resolve them. A no-op (single segment, no
// tombstones) answers 200 with compacted=false.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, r, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.cfg.MaxAppendBody < 0 {
		s.fail(w, r, http.StatusForbidden, "index mutation is disabled on this server")
		return
	}
	start := time.Now()
	compacted, err := s.ix.Compact(r.Context())
	if err != nil {
		s.fail(w, r, errStatus(err), err.Error())
		return
	}
	st := s.ix.Stats()
	s.writeJSON(w, http.StatusOK, CompactResponse{
		Compacted:  compacted,
		Segments:   s.ix.Segments(),
		Generation: s.ix.Generation(),
		LiveTrees:  st.LiveTrees,
		TookNS:     time.Since(start).Nanoseconds(),
	})
}

// ReloadResponse is the /reload response body.
type ReloadResponse struct {
	// Reloaded reports whether the on-disk manifest differed and a new
	// segment set was swapped in.
	Reloaded bool `json:"reloaded"`
	// Segments is the live segment count after the reload.
	Segments int `json:"segments"`
	// Generation is the manifest publish counter after the reload.
	Generation int `json:"generation"`
}

// handleReload serves POST /reload: re-read the index manifest and
// pick up segments published by another process (e.g. sibuild -append
// against the served directory) with zero downtime.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, r, http.StatusMethodNotAllowed, "use POST")
		return
	}
	reloaded, err := s.ix.Reload()
	if err != nil {
		s.fail(w, r, errStatus(err), err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, ReloadResponse{
		Reloaded:   reloaded,
		Segments:   s.ix.Segments(),
		Generation: s.ix.Generation(),
	})
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status: "ok",
		Trees:  s.ix.NumTrees(),
		Shards: s.ix.Shards(),
	})
}

// ReadyResponse is the /readyz response body.
type ReadyResponse struct {
	// Ready reports the node accepts new query traffic. It is false
	// while the server drains for shutdown; routers and load balancers
	// should stop routing to the node but leave in-flight requests to
	// finish.
	Ready bool `json:"ready"`
	// Trees is the number of indexed trees.
	Trees int `json:"trees"`
	// Segments is the live segment count.
	Segments int `json:"segments"`
	// Generation is the manifest publish counter — a cheap way for a
	// follower's operator to check replication lag against the leader.
	Generation int `json:"generation"`
}

// handleReadyz serves GET /readyz: readiness, as distinct from
// /healthz's liveness. A live process stops being ready the moment
// graceful shutdown begins (SetDraining), so a router health loop that
// polls /readyz drains the node cleanly: no new queries are routed,
// while accepted ones — and the drain window — finish undisturbed. By
// construction the handler only exists once the index is open, so
// before that the port answers connection refused, which is equally
// "not ready" to a poller.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := ReadyResponse{
		Ready:      !s.draining.Load(),
		Trees:      s.ix.NumTrees(),
		Segments:   s.ix.Segments(),
		Generation: s.ix.Generation(),
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, resp)
}

// handleManifest serves GET /manifest: the on-disk index manifest
// (meta.json), byte-for-byte. A follower polls it for the generation
// counter and segment list, pulls any segments it is missing via
// /segment, writes the same manifest bytes locally and calls its own
// Reload — the atomic-publish contract means whatever manifest this
// endpoint returns names only fully published segments.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.cfg.Dir == "" {
		s.fail(w, r, http.StatusNotFound, "replication is disabled (server not configured with an index directory)")
		return
	}
	data, err := os.ReadFile(filepath.Join(s.cfg.Dir, core.MetaFileName))
	if err != nil {
		s.fail(w, r, http.StatusInternalServerError, "read manifest: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleSegment serves GET /segment/{name}/{file}: one payload file of
// a published segment, range-served (http.ServeFile) so an interrupted
// follower pull can resume. {name} must be a seg-NNNNNN directory and
// {file} one of the fixed payload paths (meta.json, subtree.idx,
// trees.dat, trees.idx, optionally under one shard-NNNN/ level);
// the allowlist is structural, so traversal and absolute paths are
// unrepresentable rather than filtered. Segments are immutable once
// published, which is what makes byte-range resumption sound.
func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, r, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.cfg.Dir == "" {
		s.fail(w, r, http.StatusNotFound, "replication is disabled (server not configured with an index directory)")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/segment/")
	name, file, found := strings.Cut(rest, "/")
	if !found || !core.IsSegmentName(name) || !core.IsSegmentFile(file) {
		s.fail(w, r, http.StatusNotFound, "no such segment file (want /segment/seg-NNNNNN/{meta.json|subtree.idx|trees.dat|trees.idx}, optionally under shard-NNNN/)")
		return
	}
	http.ServeFile(w, r, filepath.Join(s.cfg.Dir, name, filepath.FromSlash(file)))
}

// handleStats serves GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	info := s.ix.Info()
	st := s.ix.Stats()
	s.writeJSON(w, http.StatusOK, StatsResponse{
		Index: IndexStats{
			Trees:           s.ix.NumTrees(),
			LiveTrees:       st.LiveTrees,
			TombstonedTrees: st.TombstonedTrees,
			Shards:          s.ix.Shards(),
			Segments:        s.ix.Segments(),
			Generation:      s.ix.Generation(),
			MSS:             s.ix.MSS(),
			Coding:          s.ix.Coding().String(),
			Keys:            info.Keys,
			Postings:        info.Postings,
			IndexBytes:      info.IndexBytes,
			DataBytes:       info.DataBytes,
		},
		Serving: ServingStats{
			UptimeSeconds: int64(time.Since(s.started).Seconds()),
			Requests:      s.requests.Load(),
			Queries:       s.queries.Load(),
			Errors:        s.errors.Load(),
			Rejected:      s.rejected.Load(),
			MaxInflight:   s.cfg.MaxInflight,
			Stats:         st,
		},
	})
}

// result shapes one engine result for the wire.
func result(src string, res *si.SearchResult) QueryResult {
	qr := QueryResult{Query: src, Count: res.Count, Truncated: res.Stats.Truncated}
	if res.Matches == nil {
		return qr
	}
	qr.Matches = make([]MatchJSON, len(res.Matches))
	for i, m := range res.Matches {
		qr.Matches[i] = MatchJSON{TID: m.TID, Root: m.Root}
	}
	return qr
}

// effectiveLimit clamps a requested per-query match limit to the
// configured cap; 0 means the cap itself, negative caps mean unlimited.
func (s *Server) effectiveLimit(requested int) int {
	if s.cfg.MaxMatches < 0 {
		if requested > 0 {
			return requested
		}
		return 0 // unlimited
	}
	if requested <= 0 || requested > s.cfg.MaxMatches {
		return s.cfg.MaxMatches
	}
	return requested
}

// errStatus maps an evaluation error to an HTTP status: malformed
// query text is the client's fault (400), an expired evaluation
// deadline is a timeout (504), anything else — I/O failures, corrupt
// postings — is the server's (500), so monitoring and load balancers
// see a failing backend rather than bad clients.
func errStatus(err error) int {
	var pe *query.ParseError
	if errors.As(err, &pe) {
		return http.StatusBadRequest
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// fail answers with a JSON error body. Server-side failures (5xx) are
// logged with the request ID so a client-reported failure can be
// matched to its server log line.
func (s *Server) fail(w http.ResponseWriter, r *http.Request, status int, msg string) {
	s.errors.Add(1)
	if status >= 500 {
		log.Printf("sisrv: rid=%s %s %s: %d %s",
			RequestIDFrom(r.Context()), r.Method, r.URL.Path, status, msg)
	}
	s.writeJSON(w, status, map[string]string{"error": msg})
}

// writeJSON encodes v as the response with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is gone; nothing left to signal
}
