// Package server implements the sisrv HTTP API: JSON endpoints over a
// long-lived si.Index, so the open/parse/decompose cost of querying is
// amortized across requests instead of being paid per process (the
// serving direction the ROADMAP calls out; cmd/sisrv is the binary).
//
// Endpoints:
//
//	GET  /search?q=Q&limit=N   matches of one query (count always exact)
//	GET  /count?q=Q            match count only
//	POST /batch                {"queries": [...]} evaluated as one batch:
//	                           shared cover keys are fetched once per shard
//	GET  /healthz              liveness + corpus summary
//	GET  /stats                index info and cumulative serving counters
//
// All responses are JSON; errors are {"error": "..."} with a 4xx/5xx
// status. The handler is safe for concurrent use — si.Index is — and
// holds no per-request state.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/query"
	"repro/si"
)

// Defaults for the zero values of Config.
const (
	DefaultMaxMatches = 1000
	DefaultMaxBatch   = 256
	DefaultMaxBody    = 1 << 20
)

// Config bounds what one request may cost the server.
type Config struct {
	// MaxMatches caps the matches returned per query (response counts
	// stay exact; the match list is truncated and flagged). 0 means
	// DefaultMaxMatches; negative means no cap.
	MaxMatches int
	// MaxBatch caps the queries accepted by one /batch request.
	// 0 means DefaultMaxBatch.
	MaxBatch int
	// MaxBody caps the /batch request body in bytes. 0 means
	// DefaultMaxBody.
	MaxBody int64
}

// normalize fills in defaults for zero fields.
func (c *Config) normalize() {
	if c.MaxMatches == 0 {
		c.MaxMatches = DefaultMaxMatches
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxBody == 0 {
		c.MaxBody = DefaultMaxBody
	}
}

// Server is the sisrv HTTP handler over one open index.
type Server struct {
	ix      *si.Index
	cfg     Config
	mux     *http.ServeMux
	started time.Time

	requests atomic.Uint64 // HTTP requests accepted
	queries  atomic.Uint64 // queries evaluated (batch elements count individually)
	errors   atomic.Uint64 // requests answered with an error status
}

// New returns a handler serving ix. The index must stay open for the
// server's lifetime; the caller retains ownership and closes it.
func New(ix *si.Index, cfg Config) *Server {
	cfg.normalize()
	s := &Server{ix: ix, cfg: cfg, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/count", s.handleCount)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// ServeHTTP dispatches to the endpoint handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// MatchJSON is one query match on the wire.
type MatchJSON struct {
	// TID is the tree identifier.
	TID uint32 `json:"tid"`
	// Root is the pre-order rank of the node the query root matched.
	Root uint32 `json:"root"`
}

// QueryResult is the per-query payload of /search and /batch.
type QueryResult struct {
	// Query echoes the query text as submitted.
	Query string `json:"query"`
	// Count is the exact total number of matches, independent of any
	// truncation of Matches.
	Count int `json:"count"`
	// Matches lists up to the effective limit of matches in (tid, root)
	// order; omitted by /count and count-only batches.
	Matches []MatchJSON `json:"matches,omitempty"`
	// Truncated reports that Matches was cut off at the limit.
	Truncated bool `json:"truncated,omitempty"`
}

// SearchResponse is the /search and /count response body.
type SearchResponse struct {
	QueryResult
	// TookNS is the server-side evaluation time in nanoseconds.
	TookNS int64 `json:"took_ns"`
}

// BatchRequest is the /batch request body.
type BatchRequest struct {
	// Queries are evaluated as one batch; results keep their order.
	Queries []string `json:"queries"`
	// Limit caps matches per query like /search's limit parameter.
	Limit int `json:"limit,omitempty"`
	// CountOnly omits match lists from all results.
	CountOnly bool `json:"count_only,omitempty"`
}

// BatchResponse is the /batch response body.
type BatchResponse struct {
	// Results holds one entry per submitted query, in order.
	Results []QueryResult `json:"results"`
	// TookNS is the server-side evaluation time for the whole batch.
	TookNS int64 `json:"took_ns"`
}

// HealthResponse is the /healthz response body.
type HealthResponse struct {
	// Status is "ok" whenever the server can answer at all.
	Status string `json:"status"`
	// Trees is the number of indexed trees.
	Trees int `json:"trees"`
	// Shards is the index partition count (1 when unsharded).
	Shards int `json:"shards"`
}

// StatsResponse is the /stats response body.
type StatsResponse struct {
	// Index describes the corpus and build.
	Index IndexStats `json:"index"`
	// Serving holds cumulative counters since the server started.
	Serving ServingStats `json:"serving"`
}

// IndexStats summarizes the served index.
type IndexStats struct {
	Trees      int    `json:"trees"`       // corpus size
	Shards     int    `json:"shards"`      // partitions (1 = unsharded)
	MSS        int    `json:"mss"`         // maximum indexed subtree size
	Coding     string `json:"coding"`      // posting scheme name
	Keys       int    `json:"keys"`        // unique subtrees indexed
	Postings   int    `json:"postings"`    // total posting records
	IndexBytes int64  `json:"index_bytes"` // B+Tree bytes on disk
	DataBytes  int64  `json:"data_bytes"`  // flattened corpus bytes
}

// ServingStats holds the server's and the index's cumulative counters.
type ServingStats struct {
	// UptimeSeconds since New.
	UptimeSeconds int64 `json:"uptime_seconds"`
	// Requests is the number of HTTP requests accepted.
	Requests uint64 `json:"requests"`
	// Queries is the number of queries evaluated (each batch element
	// counts as one).
	Queries uint64 `json:"queries"`
	// Errors is the number of requests answered with an error status.
	Errors uint64 `json:"errors"`
	// Stats are the index's counters: posting fetches and plan-cache
	// hits/misses.
	si.Stats
}

// handleSearch serves GET /search?q=Q&limit=N.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.query(w, r, false)
}

// handleCount serves GET /count?q=Q.
func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	s.query(w, r, true)
}

// query evaluates the q parameter, with or without the match list.
func (s *Server) query(w http.ResponseWriter, r *http.Request, countOnly bool) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	src := r.URL.Query().Get("q")
	if src == "" {
		s.fail(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	limit, err := s.limit(r.URL.Query().Get("limit"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err.Error())
		return
	}
	start := time.Now()
	ms, err := s.ix.Search(src)
	if err != nil {
		s.fail(w, errStatus(err), err.Error())
		return
	}
	s.queries.Add(1)
	resp := SearchResponse{
		QueryResult: s.result(src, ms, limit, countOnly),
		TookNS:      time.Since(start).Nanoseconds(),
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleBatch serves POST /batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "bad batch body: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		s.fail(w, http.StatusBadRequest, "empty queries")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		s.fail(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d queries exceeds limit %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	limit := s.effectiveLimit(req.Limit)
	start := time.Now()
	results, err := s.ix.SearchBatch(req.Queries)
	if err != nil {
		s.fail(w, errStatus(err), err.Error())
		return
	}
	s.queries.Add(uint64(len(req.Queries)))
	resp := BatchResponse{Results: make([]QueryResult, len(results))}
	for i, ms := range results {
		resp.Results[i] = s.result(req.Queries[i], ms, limit, req.CountOnly)
	}
	resp.TookNS = time.Since(start).Nanoseconds()
	s.writeJSON(w, http.StatusOK, resp)
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status: "ok",
		Trees:  s.ix.NumTrees(),
		Shards: s.ix.Shards(),
	})
}

// handleStats serves GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	info := s.ix.Info()
	s.writeJSON(w, http.StatusOK, StatsResponse{
		Index: IndexStats{
			Trees:      s.ix.NumTrees(),
			Shards:     s.ix.Shards(),
			MSS:        s.ix.MSS(),
			Coding:     s.ix.Coding().String(),
			Keys:       info.Keys,
			Postings:   info.Postings,
			IndexBytes: info.IndexBytes,
			DataBytes:  info.DataBytes,
		},
		Serving: ServingStats{
			UptimeSeconds: int64(time.Since(s.started).Seconds()),
			Requests:      s.requests.Load(),
			Queries:       s.queries.Load(),
			Errors:        s.errors.Load(),
			Stats:         s.ix.Stats(),
		},
	})
}

// result shapes one query's matches for the wire, applying the limit.
func (s *Server) result(src string, ms []si.Match, limit int, countOnly bool) QueryResult {
	qr := QueryResult{Query: src, Count: len(ms)}
	if countOnly {
		return qr
	}
	if limit >= 0 && len(ms) > limit {
		ms = ms[:limit]
		qr.Truncated = true
	}
	qr.Matches = make([]MatchJSON, len(ms))
	for i, m := range ms {
		qr.Matches[i] = MatchJSON{TID: m.TID, Root: m.Root}
	}
	return qr
}

// limit parses the limit query parameter.
func (s *Server) limit(raw string) (int, error) {
	if raw == "" {
		return s.effectiveLimit(0), nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad limit %q", raw)
	}
	return s.effectiveLimit(n), nil
}

// effectiveLimit clamps a requested per-query match limit to the
// configured cap; 0 means the cap itself, negative caps mean unlimited.
func (s *Server) effectiveLimit(requested int) int {
	if s.cfg.MaxMatches < 0 {
		if requested > 0 {
			return requested
		}
		return -1 // unlimited
	}
	if requested <= 0 || requested > s.cfg.MaxMatches {
		return s.cfg.MaxMatches
	}
	return requested
}

// errStatus maps an evaluation error to an HTTP status: malformed
// query text is the client's fault (400), anything else — I/O
// failures, corrupt postings — is the server's (500), so monitoring
// and load balancers see a failing backend rather than bad clients.
func errStatus(err error) int {
	var pe *query.ParseError
	if errors.As(err, &pe) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// fail answers with a JSON error body.
func (s *Server) fail(w http.ResponseWriter, status int, msg string) {
	s.errors.Add(1)
	s.writeJSON(w, status, map[string]string{"error": msg})
}

// writeJSON encodes v as the response with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the status line is gone; nothing left to signal
}
