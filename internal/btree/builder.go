package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/pager"
)

// Builder bulk-loads a B+Tree from keys supplied in strictly increasing
// order, writing leaves left to right and stitching internal levels
// bottom-up. This is the natural loading path for the Subtree Index,
// whose keys come out of the extraction phase already aggregated and
// sortable.
type Builder struct {
	pf *pager.File

	// Current leaf under construction.
	leafBuf  []byte
	leafN    int
	leafID   uint32
	haveLeaf bool

	// A completed leaf waiting for its next-pointer (assigned when the
	// following leaf is allocated).
	pending    []byte
	pendingID  uint32
	pendingKey []byte // first key of the pending leaf

	levels  []*levelBuilder
	lastKey []byte
	nkeys   uint64
	done    bool
}

type levelBuilder struct {
	buf      []byte
	n        int    // number of separator entries (children - 1)
	firstSep []byte // smallest key in this page's subtree (routes to it)
}

// NewBuilder creates a page file at path and returns a Builder over it.
func NewBuilder(path string, pageSize int) (*Builder, error) {
	pf, err := pager.Create(path, pageSize)
	if err != nil {
		return nil, err
	}
	// Reserve page 1 for the meta page.
	metaID, err := pf.Alloc()
	if err != nil {
		pf.Close()
		return nil, err
	}
	if metaID != 1 {
		pf.Close()
		return nil, fmt.Errorf("btree: meta page allocated at %d", metaID)
	}
	return &Builder{pf: pf}, nil
}

// MaxKeyLen returns the largest key the builder accepts for its page
// size; a routing entry (and an overflow leaf entry) must fit a page
// with room to spare so internal fanout stays at least two.
func (b *Builder) MaxKeyLen() int { return b.pf.PageSize()/2 - 16 }

// Add appends a key/value pair. Keys must be strictly increasing.
func (b *Builder) Add(key, value []byte) error {
	if b.done {
		return fmt.Errorf("btree: Add after Finish")
	}
	if len(key) == 0 || len(key) > b.MaxKeyLen() {
		return fmt.Errorf("btree: key length %d out of range [1, %d]", len(key), b.MaxKeyLen())
	}
	if b.lastKey != nil && bytes.Compare(key, b.lastKey) <= 0 {
		return fmt.Errorf("btree: keys out of order: %q after %q", key, b.lastKey)
	}
	b.lastKey = append(b.lastKey[:0], key...)

	entry, err := b.encodeEntry(key, value)
	if err != nil {
		return err
	}
	if !b.haveLeaf {
		if err := b.startLeaf(key); err != nil {
			return err
		}
	} else if b.leafN > 0 && len(b.leafBuf)+len(entry) > b.pf.PageSize() {
		if err := b.completeLeaf(); err != nil {
			return err
		}
		if err := b.startLeaf(key); err != nil {
			return err
		}
	}
	if len(b.leafBuf)+len(entry) > b.pf.PageSize() {
		return fmt.Errorf("btree: entry for key %q does not fit a page even alone", key)
	}
	b.leafBuf = append(b.leafBuf, entry...)
	b.leafN++
	b.nkeys++
	return nil
}

// encodeEntry renders one leaf entry, writing the value to an overflow
// chain when it cannot share a page with its key.
func (b *Builder) encodeEntry(key, value []byte) ([]byte, error) {
	var tmp [binary.MaxVarintLen64]byte
	inlineSize := 1 + uvlen(uint64(len(key))) + len(key) + uvlen(uint64(len(value))) + len(value)
	// Inline if the whole entry fits in half a page; large values go to
	// overflow chains so leaves keep fanout.
	if inlineSize <= b.pf.PageSize()/2 {
		e := make([]byte, 0, inlineSize)
		e = append(e, 0)
		n := binary.PutUvarint(tmp[:], uint64(len(key)))
		e = append(e, tmp[:n]...)
		e = append(e, key...)
		n = binary.PutUvarint(tmp[:], uint64(len(value)))
		e = append(e, tmp[:n]...)
		e = append(e, value...)
		return e, nil
	}
	first, err := b.writeOverflow(value)
	if err != nil {
		return nil, err
	}
	e := make([]byte, 0, 1+uvlen(uint64(len(key)))+len(key)+uvlen(uint64(len(value)))+4)
	e = append(e, 1)
	n := binary.PutUvarint(tmp[:], uint64(len(key)))
	e = append(e, tmp[:n]...)
	e = append(e, key...)
	n = binary.PutUvarint(tmp[:], uint64(len(value)))
	e = append(e, tmp[:n]...)
	var pid [4]byte
	binary.LittleEndian.PutUint32(pid[:], first)
	e = append(e, pid[:]...)
	return e, nil
}

func (b *Builder) writeOverflow(value []byte) (uint32, error) {
	chunk := b.pf.PageSize() - overflowHeader
	// Allocate the whole chain first so next-pointers are known.
	n := (len(value) + chunk - 1) / chunk
	if n == 0 {
		n = 1
	}
	ids := make([]uint32, n)
	for i := range ids {
		id, err := b.pf.Alloc()
		if err != nil {
			return 0, err
		}
		ids[i] = id
	}
	page := make([]byte, b.pf.PageSize())
	for i := range ids {
		next := uint32(0)
		if i+1 < len(ids) {
			next = ids[i+1]
		}
		binary.LittleEndian.PutUint32(page[0:], next)
		lo := i * chunk
		hi := lo + chunk
		if hi > len(value) {
			hi = len(value)
		}
		copy(page[overflowHeader:], value[lo:hi])
		for j := overflowHeader + (hi - lo); j < len(page); j++ {
			page[j] = 0
		}
		if err := b.pf.Write(ids[i], page); err != nil {
			return 0, err
		}
	}
	return ids[0], nil
}

func (b *Builder) startLeaf(firstKey []byte) error {
	id, err := b.pf.Alloc()
	if err != nil {
		return err
	}
	// The previously completed leaf can now learn its next pointer.
	if b.pending != nil {
		binary.LittleEndian.PutUint32(b.pending[3:], id)
		if err := b.flushPending(); err != nil {
			return err
		}
	}
	b.leafID = id
	b.leafBuf = make([]byte, leafHeader, b.pf.PageSize())
	b.leafBuf[0] = pageLeaf
	b.leafN = 0
	b.haveLeaf = true
	b.pendingKey = append([]byte(nil), firstKey...)
	return nil
}

// completeLeaf finalizes the current leaf into the pending slot.
func (b *Builder) completeLeaf() error {
	binary.LittleEndian.PutUint16(b.leafBuf[1:], uint16(b.leafN))
	page := make([]byte, b.pf.PageSize())
	copy(page, b.leafBuf)
	b.pending = page
	b.pendingID = b.leafID
	b.haveLeaf = false
	return b.pushLevel(0, b.pendingKey, b.leafID)
}

func (b *Builder) flushPending() error {
	err := b.pf.Write(b.pendingID, b.pending)
	b.pending = nil
	return err
}

// pushLevel records (sepKey, child) at internal level l, flushing pages
// as they fill.
func (b *Builder) pushLevel(l int, sepKey []byte, child uint32) error {
	for len(b.levels) <= l {
		b.levels = append(b.levels, &levelBuilder{})
	}
	lv := b.levels[l]
	var tmp [binary.MaxVarintLen64]byte
	entry := make([]byte, 0, 16+len(sepKey))
	if lv.buf == nil {
		// First child of a fresh page becomes the leftmost pointer; the
		// separator that routes to this page (its subtree minimum) is
		// remembered for the level above.
		lv.buf = make([]byte, internalHeader, b.pf.PageSize())
		lv.buf[0] = pageInternal
		binary.LittleEndian.PutUint32(lv.buf[3:], child)
		lv.n = 0
		lv.firstSep = append(lv.firstSep[:0], sepKey...)
		return nil
	}
	n := binary.PutUvarint(tmp[:], uint64(len(sepKey)))
	entry = append(entry, tmp[:n]...)
	entry = append(entry, sepKey...)
	var pid [4]byte
	binary.LittleEndian.PutUint32(pid[:], child)
	entry = append(entry, pid[:]...)
	if len(lv.buf)+len(entry) > b.pf.PageSize() {
		if err := b.flushLevel(l); err != nil {
			return err
		}
		return b.pushLevel(l, sepKey, child)
	}
	lv.buf = append(lv.buf, entry...)
	lv.n++
	return nil
}

// flushLevel writes out the internal page at level l and registers it
// one level up.
func (b *Builder) flushLevel(l int) error {
	lv := b.levels[l]
	binary.LittleEndian.PutUint16(lv.buf[1:], uint16(lv.n))
	id, err := b.pf.Alloc()
	if err != nil {
		return err
	}
	page := make([]byte, b.pf.PageSize())
	copy(page, lv.buf)
	if err := b.pf.Write(id, page); err != nil {
		return err
	}
	sep := append([]byte(nil), lv.firstSep...)
	lv.buf = nil
	lv.n = 0
	return b.pushLevel(l+1, sep, id)
}

// Finish completes the tree, writes the meta page and closes the file.
func (b *Builder) Finish() error {
	if b.done {
		return fmt.Errorf("btree: Finish called twice")
	}
	b.done = true
	defer b.pf.Close()

	var root uint32
	if b.nkeys == 0 {
		// Empty tree: a single empty leaf as root.
		id, err := b.pf.Alloc()
		if err != nil {
			return err
		}
		page := make([]byte, b.pf.PageSize())
		page[0] = pageLeaf
		if err := b.pf.Write(id, page); err != nil {
			return err
		}
		root = id
	} else {
		if b.haveLeaf {
			if err := b.completeLeaf(); err != nil {
				return err
			}
		}
		if b.pending != nil {
			binary.LittleEndian.PutUint32(b.pending[3:], 0) // last leaf
			if err := b.flushPending(); err != nil {
				return err
			}
		}
		// Cascade-flush internal levels bottom-up. The loop bound grows
		// as flushes push entries into higher levels. A top level that
		// holds a single child and no separators collapses: that child
		// is the root.
		for l := 0; l < len(b.levels); l++ {
			lv := b.levels[l]
			if lv.buf == nil {
				continue
			}
			if lv.n == 0 && l == len(b.levels)-1 {
				root = binary.LittleEndian.Uint32(lv.buf[3:])
				lv.buf = nil
				break
			}
			if err := b.flushLevel(l); err != nil {
				return err
			}
		}
		if root == 0 {
			return fmt.Errorf("btree: internal error: no root after cascade")
		}
	}
	height, err := b.measureHeight(root)
	if err != nil {
		return err
	}

	meta := make([]byte, b.pf.PageSize())
	meta[0] = pageMeta
	binary.LittleEndian.PutUint32(meta[1:], root)
	binary.LittleEndian.PutUint64(meta[5:], b.nkeys)
	binary.LittleEndian.PutUint32(meta[13:], height)
	if err := b.pf.Write(1, meta); err != nil {
		return err
	}
	return b.pf.Sync()
}

// measureHeight walks from the root to a leaf counting levels; 1 means
// the root itself is a leaf.
func (b *Builder) measureHeight(root uint32) (uint32, error) {
	buf := make([]byte, b.pf.PageSize())
	h := uint32(1)
	id := root
	for {
		if err := b.pf.Read(id, buf); err != nil {
			return 0, err
		}
		if buf[0] == pageLeaf {
			return h, nil
		}
		if buf[0] != pageInternal {
			return 0, fmt.Errorf("btree: unexpected page type %q measuring height", buf[0])
		}
		id = binary.LittleEndian.Uint32(buf[3:])
		h++
	}
}

func uvlen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
