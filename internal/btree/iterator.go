package btree

import (
	"bytes"
	"encoding/binary"
)

// Iterator walks key/value pairs in ascending key order, starting at the
// first key >= the start bound. It reads leaf pages through the chain
// pointers left by the bulk loader, borrowing one page view at a time
// under the pager's borrow contract: the current leaf stays borrowed
// across Next calls and is released when the iterator advances to the
// next leaf or finishes. Keys and inline values are copied into
// per-iterator buffers reused across Next calls, so they stay valid
// until the next Next regardless of backend.
type Iterator struct {
	t       *Tree
	page    []byte
	release func() // releases the borrow on page; nil when none held
	n       int    // entries in current page
	i       int    // next entry index
	off     int    // byte offset of next entry
	err     error
	done    bool
	prevOff int // offset of the most recently decoded entry

	key []byte
	val []byte
}

// Iterator returns an iterator positioned at the first key >= start
// (nil starts at the beginning).
func (t *Tree) Iterator(start []byte) *Iterator {
	it := &Iterator{t: t}
	if t.keys == 0 {
		it.done = true
		return it
	}
	var leaf uint32
	var err error
	if start == nil {
		leaf, err = t.firstLeaf()
	} else {
		leaf, err = t.leafFor(start)
	}
	if err != nil {
		it.err = err
		it.done = true
		return it
	}
	if err := it.loadLeaf(leaf); err != nil {
		it.err = err
		it.done = true
		return it
	}
	if start != nil {
		for it.Next() {
			if bytes.Compare(it.Key(), start) >= 0 {
				it.rewindOne()
				break
			}
		}
	}
	return it
}

// rewindOne makes the entry just decoded be returned again by Next.
func (it *Iterator) rewindOne() { it.i--; it.off = it.prevOff }

// loadLeaf swaps the current page borrow for leaf id.
func (it *Iterator) loadLeaf(id uint32) error {
	it.dropPage()
	page, release, err := it.t.pf.ReadPage(id)
	if err != nil {
		return err
	}
	it.page, it.release = page, release
	it.n = int(binary.LittleEndian.Uint16(page[1:]))
	it.i = 0
	it.off = leafHeader
	return nil
}

// dropPage releases the current page borrow, if any.
func (it *Iterator) dropPage() {
	if it.release != nil {
		it.release()
		it.page, it.release = nil, nil
	}
}

// Next advances to the next pair; it returns false at the end or on
// error (check Err).
func (it *Iterator) Next() bool {
	if it.done {
		return false
	}
	for it.i >= it.n {
		next := binary.LittleEndian.Uint32(it.page[3:])
		if next == 0 {
			it.done = true
			it.dropPage()
			return false
		}
		if err := it.loadLeaf(next); err != nil {
			it.err = err
			it.done = true
			return false
		}
	}
	it.prevOff = it.off
	off := it.off
	flag := it.page[off]
	off++
	klen, m := binary.Uvarint(it.page[off:])
	off += m
	it.key = append(it.key[:0], it.page[off:off+int(klen)]...)
	off += int(klen)
	vlen, m := binary.Uvarint(it.page[off:])
	off += m
	if flag == 0 {
		it.val = append(it.val[:0], it.page[off:off+int(vlen)]...)
		off += int(vlen)
	} else {
		first := binary.LittleEndian.Uint32(it.page[off:])
		off += 4
		v, err := it.t.readOverflow(first, int(vlen))
		if err != nil {
			it.err = err
			it.done = true
			it.dropPage()
			return false
		}
		it.val = v
	}
	it.off = off
	it.i++
	return true
}

// Key returns the current key; valid until the next call to Next.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value; valid until the next call to Next.
func (it *Iterator) Value() []byte { return it.val }

// Err reports any IO error encountered while iterating.
func (it *Iterator) Err() error { return it.err }
