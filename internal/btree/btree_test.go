package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

func buildTree(t testing.TB, pageSize int, pairs [][2][]byte) *Tree {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.db")
	b, err := NewBuilder(path, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range pairs {
		if err := b.Add(kv[0], kv[1]); err != nil {
			t.Fatalf("Add(%q): %v", kv[0], err)
		}
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	tr, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestEmptyTree(t *testing.T) {
	tr := buildTree(t, 256, nil)
	if _, found, err := tr.Get([]byte("x")); err != nil || found {
		t.Errorf("Get on empty: found=%v err=%v", found, err)
	}
	st := tr.Stats()
	if st.Keys != 0 || st.Height != 1 {
		t.Errorf("stats = %+v", st)
	}
	it := tr.Iterator(nil)
	if it.Next() {
		t.Error("iterator on empty tree yielded an entry")
	}
}

func TestSingleKey(t *testing.T) {
	tr := buildTree(t, 256, [][2][]byte{{[]byte("k"), []byte("v")}})
	v, found, err := tr.Get([]byte("k"))
	if err != nil || !found || string(v) != "v" {
		t.Errorf("Get = %q, %v, %v", v, found, err)
	}
	if _, found, _ := tr.Get([]byte("j")); found {
		t.Error("found absent key j")
	}
	if _, found, _ := tr.Get([]byte("l")); found {
		t.Error("found absent key l")
	}
}

func TestManyKeysSmallPages(t *testing.T) {
	// Small pages force a multi-level tree.
	var pairs [][2][]byte
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		v := []byte(fmt.Sprintf("value-%d", i*7))
		pairs = append(pairs, [2][]byte{k, v})
	}
	tr := buildTree(t, 128, pairs)
	st := tr.Stats()
	if st.Keys != 1000 {
		t.Errorf("Keys = %d", st.Keys)
	}
	if st.Height < 3 {
		t.Errorf("Height = %d, want a deep tree with 128B pages", st.Height)
	}
	for i := 0; i < 1000; i += 13 {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, found, err := tr.Get(k)
		if err != nil || !found {
			t.Fatalf("Get(%q): %v %v", k, found, err)
		}
		if want := fmt.Sprintf("value-%d", i*7); string(v) != want {
			t.Errorf("Get(%q) = %q, want %q", k, v, want)
		}
	}
	for _, absent := range []string{"key", "key000500x", "zzz", "a"} {
		if _, found, _ := tr.Get([]byte(absent)); found {
			t.Errorf("found absent key %q", absent)
		}
	}
}

func TestLargeValuesOverflow(t *testing.T) {
	big := bytes.Repeat([]byte("abcdefgh"), 4096) // 32 KiB value
	pairs := [][2][]byte{
		{[]byte("a"), []byte("small")},
		{[]byte("b"), big},
		{[]byte("c"), bytes.Repeat([]byte{0xFF}, 300)},
	}
	tr := buildTree(t, 256, pairs)
	v, found, err := tr.Get([]byte("b"))
	if err != nil || !found {
		t.Fatalf("Get(b): %v %v", found, err)
	}
	if !bytes.Equal(v, big) {
		t.Errorf("overflow value corrupted: len %d want %d", len(v), len(big))
	}
	v, found, _ = tr.Get([]byte("c"))
	if !found || !bytes.Equal(v, bytes.Repeat([]byte{0xFF}, 300)) {
		t.Error("medium value corrupted")
	}
}

func TestBuilderRejectsBadInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.db")
	b, err := NewBuilder(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(nil, []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
	if err := b.Add(bytes.Repeat([]byte("x"), 10000), nil); err == nil {
		t.Error("oversized key accepted")
	}
	if err := b.Add([]byte("m"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]byte("m"), []byte("2")); err == nil {
		t.Error("duplicate key accepted")
	}
	if err := b.Add([]byte("a"), []byte("3")); err == nil {
		t.Error("out-of-order key accepted")
	}
	if err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := b.Finish(); err == nil {
		t.Error("double Finish accepted")
	}
	if err := b.Add([]byte("z"), nil); err == nil {
		t.Error("Add after Finish accepted")
	}
}

func TestIteratorFullScan(t *testing.T) {
	var pairs [][2][]byte
	for i := 0; i < 500; i++ {
		pairs = append(pairs, [2][]byte{
			[]byte(fmt.Sprintf("k%05d", i)),
			[]byte(fmt.Sprintf("v%d", i)),
		})
	}
	tr := buildTree(t, 128, pairs)
	it := tr.Iterator(nil)
	i := 0
	for it.Next() {
		if string(it.Key()) != fmt.Sprintf("k%05d", i) {
			t.Fatalf("key %d = %q", i, it.Key())
		}
		if string(it.Value()) != fmt.Sprintf("v%d", i) {
			t.Fatalf("value %d = %q", i, it.Value())
		}
		i++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if i != 500 {
		t.Errorf("iterated %d keys, want 500", i)
	}
}

func TestIteratorSeek(t *testing.T) {
	var pairs [][2][]byte
	for i := 0; i < 300; i += 2 { // even keys only
		pairs = append(pairs, [2][]byte{
			[]byte(fmt.Sprintf("k%05d", i)),
			[]byte("v"),
		})
	}
	tr := buildTree(t, 128, pairs)
	// Seek to an absent (odd) key: next even key must come first.
	it := tr.Iterator([]byte("k00101"))
	if !it.Next() {
		t.Fatal("no entries after seek")
	}
	if string(it.Key()) != "k00102" {
		t.Errorf("first key after seek = %q, want k00102", it.Key())
	}
	// Seek to a present key returns it.
	it = tr.Iterator([]byte("k00100"))
	if !it.Next() || string(it.Key()) != "k00100" {
		t.Errorf("seek to present key: %q", it.Key())
	}
	// Seek beyond the end yields nothing.
	it = tr.Iterator([]byte("z"))
	if it.Next() {
		t.Errorf("seek past end yielded %q", it.Key())
	}
}

func TestQuickRandomKeyValueRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16, pageChoice uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%400) + 1
		pageSize := []int{128, 256, 512, 4096}[pageChoice%4]
		m := map[string][]byte{}
		for len(m) < n {
			klen := rng.Intn(20) + 1
			k := make([]byte, klen)
			for i := range k {
				k[i] = byte('a' + rng.Intn(26))
			}
			vlen := rng.Intn(600)
			v := make([]byte, vlen)
			rng.Read(v)
			m[string(k)] = v
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var pairs [][2][]byte
		for _, k := range keys {
			pairs = append(pairs, [2][]byte{[]byte(k), m[k]})
		}
		tr := buildTree(t, pageSize, pairs)
		for _, k := range keys {
			v, found, err := tr.Get([]byte(k))
			if err != nil || !found || !bytes.Equal(v, m[k]) {
				t.Logf("Get(%q) = %v %v %v", k, v, found, err)
				return false
			}
		}
		// Full scan returns exactly the sorted pairs.
		it := tr.Iterator(nil)
		i := 0
		for it.Next() {
			if i >= len(keys) || string(it.Key()) != keys[i] || !bytes.Equal(it.Value(), m[keys[i]]) {
				t.Logf("scan mismatch at %d", i)
				return false
			}
			i++
		}
		return it.Err() == nil && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGet(b *testing.B) {
	var pairs [][2][]byte
	for i := 0; i < 20000; i++ {
		pairs = append(pairs, [2][]byte{
			[]byte(fmt.Sprintf("k%08d", i)),
			[]byte(fmt.Sprintf("value-%d", i)),
		})
	}
	tr := buildTree(b, 4096, pairs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("k%08d", i%20000))
		if _, found, err := tr.Get(k); !found || err != nil {
			b.Fatal("missing key")
		}
	}
}
