// Package btree implements the native disk-based B+Tree the Subtree
// Index is stored in (paper §6.1): variable-length keys mapping to
// posting-list blobs, values larger than a page spilling into overflow
// chains, and leaves chained for range scans. Indexes are built once by
// a bulk loader from a sorted key stream and then opened read-only; by
// default no user-level page cache is layered over the pager (the paper
// relies on OS page buffering, and so do we), while OpenCached opts a
// tree into the pager's sharded LRU page cache and OpenWith can select
// the zero-copy mmap backend for serving workloads.
//
// Reads go through the pager's borrow contract (pager.ReadPage):
// descents hold one page view at a time and release it before moving
// down, so a lookup allocates nothing on the mmap and cached backends.
// On those backends — where page views stay valid until Close — Get
// returns inline values as subslices of the page itself; on the pooled
// pread path it copies, because the scratch page is reused after
// release. Either way the returned value is read-only and valid until
// the Tree is closed.
//
// An opened Tree is safe for concurrent use: Get and Iterator keep all
// mutable state (page borrows, cursors) per call or per Iterator, and
// the shared pager's read path is itself thread-safe, so any number of
// goroutines may search and scan one Tree at once.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/pager"
)

// Page type tags, first byte of every B+Tree page.
const (
	pageLeaf     = 'L'
	pageInternal = 'I'
	pageOverflow = 'O'
	pageMeta     = 'M'
)

// leaf page layout:
//
//	[0] = 'L'
//	[1:3] = number of entries (uint16)
//	[3:7] = next leaf page id (0 = last leaf)
//	entries: flag byte (0 inline, 1 overflow),
//	         key length uvarint, key bytes,
//	         inline: value length uvarint, value bytes
//	         overflow: total value length uvarint, first chain page (uint32)
//
// internal page layout:
//
//	[0] = 'I'
//	[1:3] = number of separator keys (uint16)
//	[3:7] = leftmost child page id
//	entries: key length uvarint, key bytes, child page id (uint32);
//	         entry i routes keys >= key_i (and < key_{i+1}) to child_i
//
// overflow page layout:
//
//	[0:4] = next chain page id (0 = end)
//	[4:]  = value bytes
//
// meta page layout (page 1):
//
//	[0] = 'M'
//	[1:5] = root page id
//	[5:13] = number of keys (uint64)
//	[13:17] = tree height (uint32, 1 = root is a leaf)
const (
	leafHeader     = 7
	internalHeader = 7
	overflowHeader = 4
)

// Stats describes a built tree.
type Stats struct {
	Keys      uint64 // key/value pairs stored
	Height    uint32 // levels from root to leaves (1 = root is a leaf)
	Pages     uint32 // total allocated pages including meta
	SizeBytes int64  // index file size in bytes
}

// Options configure how a tree is opened; the zero value reproduces
// Open (pread, no cache).
type Options struct {
	// CacheBytes is the pager page-cache budget; 0 or less disables it.
	CacheBytes int64
	// Mmap requests the pager's memory-mapped backend, falling back to
	// pread when mapping is unavailable (see pager.OpenOptions.Mmap).
	Mmap bool
}

// Tree is a read-only view of a built B+Tree.
type Tree struct {
	pf     *pager.File
	root   uint32
	height uint32
	keys   uint64
	stable bool // page views outlive release: Get may return subslices
}

// Open opens the B+Tree stored in the page file at path with no
// user-level page cache.
func Open(path string) (*Tree, error) {
	return OpenWith(path, Options{})
}

// OpenCached opens the B+Tree with a pager page cache of roughly
// cacheBytes; 0 or less is equivalent to Open.
func OpenCached(path string, cacheBytes int64) (*Tree, error) {
	return OpenWith(path, Options{CacheBytes: cacheBytes})
}

// OpenWith opens the B+Tree stored in the page file at path with
// explicit backend options.
func OpenWith(path string, opts Options) (*Tree, error) {
	pf, err := pager.OpenWith(path, pager.OpenOptions{CacheBytes: opts.CacheBytes, Mmap: opts.Mmap})
	if err != nil {
		return nil, err
	}
	return fromPager(pf)
}

func fromPager(pf *pager.File) (*Tree, error) {
	page, release, err := pf.ReadPage(1)
	if err != nil {
		pf.Close()
		return nil, fmt.Errorf("btree: reading meta page: %w", err)
	}
	if page[0] != pageMeta {
		release()
		pf.Close()
		return nil, fmt.Errorf("btree: page 1 is not a meta page")
	}
	t := &Tree{
		pf:     pf,
		root:   binary.LittleEndian.Uint32(page[1:]),
		keys:   binary.LittleEndian.Uint64(page[5:]),
		height: binary.LittleEndian.Uint32(page[13:]),
		stable: pf.Stable(),
	}
	release()
	return t, nil
}

// Close releases the underlying file (and its mapping, when mapped).
func (t *Tree) Close() error { return t.pf.Close() }

// CacheStats reports the pager's page-cache counters (zero when the
// tree was opened without a cache).
func (t *Tree) CacheStats() pager.CacheStats { return t.pf.CacheStats() }

// Mapped reports whether reads are served from a memory mapping.
func (t *Tree) Mapped() bool { return t.pf.Mapped() }

// Stats returns size statistics for the tree.
func (t *Tree) Stats() Stats {
	return Stats{Keys: t.keys, Height: t.height, Pages: t.pf.NumPages(), SizeBytes: t.pf.SizeBytes()}
}

// Get returns the value stored under key, or found=false. The returned
// slice is read-only and valid until the Tree is closed: on the mmap
// and cached backends an inline value is a zero-copy subslice of the
// page, elsewhere (and for overflow values) it is freshly assembled.
func (t *Tree) Get(key []byte) (value []byte, found bool, err error) {
	if t.keys == 0 {
		return nil, false, nil
	}
	id := t.root
	for {
		page, release, err := t.pf.ReadPage(id)
		if err != nil {
			return nil, false, err
		}
		switch page[0] {
		case pageInternal:
			id = routeInternal(page, key)
			release()
		case pageLeaf:
			v, found, err := t.searchLeaf(page, key)
			release()
			return v, found, err
		default:
			b := page[0]
			release()
			return nil, false, fmt.Errorf("btree: unexpected page type %q at %d", b, id)
		}
	}
}

// routeInternal returns the child page for key.
func routeInternal(page []byte, key []byte) uint32 {
	n := int(binary.LittleEndian.Uint16(page[1:]))
	child := binary.LittleEndian.Uint32(page[3:])
	off := internalHeader
	for i := 0; i < n; i++ {
		klen, m := binary.Uvarint(page[off:])
		off += m
		k := page[off : off+int(klen)]
		off += int(klen)
		c := binary.LittleEndian.Uint32(page[off:])
		off += 4
		if bytes.Compare(key, k) >= 0 {
			child = c
		} else {
			break
		}
	}
	return child
}

// searchLeaf scans a leaf page for key. Inline values are returned as
// page subslices when the backend is stable (the caller still holds
// the page borrow here; stability makes the subslice outlive release),
// and copied otherwise.
func (t *Tree) searchLeaf(page []byte, key []byte) ([]byte, bool, error) {
	n := int(binary.LittleEndian.Uint16(page[1:]))
	off := leafHeader
	for i := 0; i < n; i++ {
		flag := page[off]
		off++
		klen, m := binary.Uvarint(page[off:])
		off += m
		k := page[off : off+int(klen)]
		off += int(klen)
		vlen, m := binary.Uvarint(page[off:])
		off += m
		cmp := bytes.Compare(k, key)
		if flag == 0 {
			if cmp == 0 {
				if t.stable {
					return page[off : off+int(vlen) : off+int(vlen)], true, nil
				}
				return append([]byte(nil), page[off:off+int(vlen)]...), true, nil
			}
			off += int(vlen)
		} else {
			first := binary.LittleEndian.Uint32(page[off:])
			off += 4
			if cmp == 0 {
				v, err := t.readOverflow(first, int(vlen))
				return v, err == nil, err
			}
		}
		if cmp > 0 {
			return nil, false, nil
		}
	}
	return nil, false, nil
}

func (t *Tree) readOverflow(first uint32, total int) ([]byte, error) {
	out := make([]byte, 0, total)
	chunk := t.pf.PageSize() - overflowHeader
	id := first
	for len(out) < total {
		if id == 0 {
			return nil, fmt.Errorf("btree: overflow chain truncated (%d of %d bytes)", len(out), total)
		}
		page, release, err := t.pf.ReadPage(id)
		if err != nil {
			return nil, err
		}
		n := total - len(out)
		if n > chunk {
			n = chunk
		}
		out = append(out, page[overflowHeader:overflowHeader+n]...)
		id = binary.LittleEndian.Uint32(page[0:])
		release()
	}
	return out, nil
}

// firstLeaf descends to the leftmost leaf.
func (t *Tree) firstLeaf() (uint32, error) {
	return t.descend(nil, func(page []byte, _ []byte) uint32 {
		return binary.LittleEndian.Uint32(page[3:])
	})
}

// leafFor descends to the leaf that would contain key.
func (t *Tree) leafFor(key []byte) (uint32, error) {
	return t.descend(key, routeInternal)
}

// descend walks internal pages from the root, choosing each child with
// route, until it reaches a leaf.
func (t *Tree) descend(key []byte, route func(page, key []byte) uint32) (uint32, error) {
	id := t.root
	for {
		page, release, err := t.pf.ReadPage(id)
		if err != nil {
			return 0, err
		}
		if page[0] == pageLeaf {
			release()
			return id, nil
		}
		if page[0] != pageInternal {
			b := page[0]
			release()
			return 0, fmt.Errorf("btree: unexpected page type %q", b)
		}
		id = route(page, key)
		release()
	}
}
