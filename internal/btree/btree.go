// Package btree implements the native disk-based B+Tree the Subtree
// Index is stored in (paper §6.1): variable-length keys mapping to
// posting-list blobs, values larger than a page spilling into overflow
// chains, and leaves chained for range scans. Indexes are built once by
// a bulk loader from a sorted key stream and then opened read-only; by
// default no user-level page cache is layered over the pager (the paper
// relies on OS page buffering, and so do we), while OpenCached opts a
// tree into the pager's sharded LRU page cache for serving workloads.
//
// An opened Tree is safe for concurrent use: Get and Iterator keep all
// mutable state (page buffers, cursors) per call or per Iterator, and
// the shared pager's read path is itself thread-safe, so any number of
// goroutines may search and scan one Tree at once.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/pager"
)

// Page type tags, first byte of every B+Tree page.
const (
	pageLeaf     = 'L'
	pageInternal = 'I'
	pageOverflow = 'O'
	pageMeta     = 'M'
)

// leaf page layout:
//
//	[0] = 'L'
//	[1:3] = number of entries (uint16)
//	[3:7] = next leaf page id (0 = last leaf)
//	entries: flag byte (0 inline, 1 overflow),
//	         key length uvarint, key bytes,
//	         inline: value length uvarint, value bytes
//	         overflow: total value length uvarint, first chain page (uint32)
//
// internal page layout:
//
//	[0] = 'I'
//	[1:3] = number of separator keys (uint16)
//	[3:7] = leftmost child page id
//	entries: key length uvarint, key bytes, child page id (uint32);
//	         entry i routes keys >= key_i (and < key_{i+1}) to child_i
//
// overflow page layout:
//
//	[0:4] = next chain page id (0 = end)
//	[4:]  = value bytes
//
// meta page layout (page 1):
//
//	[0] = 'M'
//	[1:5] = root page id
//	[5:13] = number of keys (uint64)
//	[13:17] = tree height (uint32, 1 = root is a leaf)
const (
	leafHeader     = 7
	internalHeader = 7
	overflowHeader = 4
)

// Stats describes a built tree.
type Stats struct {
	Keys      uint64 // key/value pairs stored
	Height    uint32 // levels from root to leaves (1 = root is a leaf)
	Pages     uint32 // total allocated pages including meta
	SizeBytes int64  // index file size in bytes
}

// Tree is a read-only view of a built B+Tree.
type Tree struct {
	pf     *pager.File
	root   uint32
	height uint32
	keys   uint64
}

// Open opens the B+Tree stored in the page file at path with no
// user-level page cache.
func Open(path string) (*Tree, error) {
	pf, err := pager.Open(path)
	if err != nil {
		return nil, err
	}
	return fromPager(pf)
}

// OpenCached opens the B+Tree with a pager page cache of roughly
// cacheBytes; 0 or less is equivalent to Open.
func OpenCached(path string, cacheBytes int64) (*Tree, error) {
	pf, err := pager.OpenCached(path, cacheBytes)
	if err != nil {
		return nil, err
	}
	return fromPager(pf)
}

func fromPager(pf *pager.File) (*Tree, error) {
	buf := make([]byte, pf.PageSize())
	if err := pf.Read(1, buf); err != nil {
		pf.Close()
		return nil, fmt.Errorf("btree: reading meta page: %w", err)
	}
	if buf[0] != pageMeta {
		pf.Close()
		return nil, fmt.Errorf("btree: page 1 is not a meta page")
	}
	t := &Tree{
		pf:     pf,
		root:   binary.LittleEndian.Uint32(buf[1:]),
		keys:   binary.LittleEndian.Uint64(buf[5:]),
		height: binary.LittleEndian.Uint32(buf[13:]),
	}
	return t, nil
}

// Close releases the underlying file.
func (t *Tree) Close() error { return t.pf.Close() }

// CacheStats reports the pager's page-cache counters (zero when the
// tree was opened without a cache).
func (t *Tree) CacheStats() pager.CacheStats { return t.pf.CacheStats() }

// Stats returns size statistics for the tree.
func (t *Tree) Stats() Stats {
	return Stats{Keys: t.keys, Height: t.height, Pages: t.pf.NumPages(), SizeBytes: t.pf.SizeBytes()}
}

// Get returns the value stored under key, or found=false.
func (t *Tree) Get(key []byte) (value []byte, found bool, err error) {
	if t.keys == 0 {
		return nil, false, nil
	}
	buf := make([]byte, t.pf.PageSize())
	id := t.root
	for {
		if err := t.pf.Read(id, buf); err != nil {
			return nil, false, err
		}
		switch buf[0] {
		case pageInternal:
			id = routeInternal(buf, key)
		case pageLeaf:
			return t.searchLeaf(buf, key)
		default:
			return nil, false, fmt.Errorf("btree: unexpected page type %q at %d", buf[0], id)
		}
	}
}

// routeInternal returns the child page for key.
func routeInternal(page []byte, key []byte) uint32 {
	n := int(binary.LittleEndian.Uint16(page[1:]))
	child := binary.LittleEndian.Uint32(page[3:])
	off := internalHeader
	for i := 0; i < n; i++ {
		klen, m := binary.Uvarint(page[off:])
		off += m
		k := page[off : off+int(klen)]
		off += int(klen)
		c := binary.LittleEndian.Uint32(page[off:])
		off += 4
		if bytes.Compare(key, k) >= 0 {
			child = c
		} else {
			break
		}
	}
	return child
}

func (t *Tree) searchLeaf(page []byte, key []byte) ([]byte, bool, error) {
	n := int(binary.LittleEndian.Uint16(page[1:]))
	off := leafHeader
	for i := 0; i < n; i++ {
		flag := page[off]
		off++
		klen, m := binary.Uvarint(page[off:])
		off += m
		k := page[off : off+int(klen)]
		off += int(klen)
		vlen, m := binary.Uvarint(page[off:])
		off += m
		cmp := bytes.Compare(k, key)
		if flag == 0 {
			if cmp == 0 {
				return append([]byte(nil), page[off:off+int(vlen)]...), true, nil
			}
			off += int(vlen)
		} else {
			first := binary.LittleEndian.Uint32(page[off:])
			off += 4
			if cmp == 0 {
				v, err := t.readOverflow(first, int(vlen))
				return v, err == nil, err
			}
		}
		if cmp > 0 {
			return nil, false, nil
		}
	}
	return nil, false, nil
}

func (t *Tree) readOverflow(first uint32, total int) ([]byte, error) {
	out := make([]byte, 0, total)
	buf := make([]byte, t.pf.PageSize())
	chunk := t.pf.PageSize() - overflowHeader
	id := first
	for len(out) < total {
		if id == 0 {
			return nil, fmt.Errorf("btree: overflow chain truncated (%d of %d bytes)", len(out), total)
		}
		if err := t.pf.Read(id, buf); err != nil {
			return nil, err
		}
		n := total - len(out)
		if n > chunk {
			n = chunk
		}
		out = append(out, buf[overflowHeader:overflowHeader+n]...)
		id = binary.LittleEndian.Uint32(buf[0:])
	}
	return out, nil
}

// firstLeaf descends to the leftmost leaf.
func (t *Tree) firstLeaf() (uint32, error) {
	buf := make([]byte, t.pf.PageSize())
	id := t.root
	for {
		if err := t.pf.Read(id, buf); err != nil {
			return 0, err
		}
		if buf[0] == pageLeaf {
			return id, nil
		}
		if buf[0] != pageInternal {
			return 0, fmt.Errorf("btree: unexpected page type %q", buf[0])
		}
		id = binary.LittleEndian.Uint32(buf[3:])
	}
}

// leafFor descends to the leaf that would contain key.
func (t *Tree) leafFor(key []byte) (uint32, error) {
	buf := make([]byte, t.pf.PageSize())
	id := t.root
	for {
		if err := t.pf.Read(id, buf); err != nil {
			return 0, err
		}
		if buf[0] == pageLeaf {
			return id, nil
		}
		if buf[0] != pageInternal {
			return 0, fmt.Errorf("btree: unexpected page type %q", buf[0])
		}
		id = routeInternal(buf, key)
	}
}
