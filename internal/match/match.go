// Package match implements exact matching of tree queries against
// syntactically annotated trees (Definition 3 of the paper), by
// backtracking over unordered embeddings.
//
// Semantics: a match maps query nodes to tree nodes preserving labels
// and axes; children of the same query node map to *distinct* tree
// nodes (sibling injectivity — the property index keys guarantee by
// construction). Matches are identified by the image of the query root,
// and the "number of matches" the paper bins queries by is the number
// of distinct (tree, root image) pairs.
//
// The matcher triples as: the ground truth in cross-coding equivalence
// tests, the post-validation (filtering) phase of filter-based coding,
// and the whole-corpus scan baseline (TGrep2/CorpusSearch model).
package match

import (
	"repro/internal/lingtree"
	"repro/internal/query"
)

// Matcher matches one query against trees, memoizing per-tree
// embeddability of query subtrees.
type Matcher struct {
	q *query.Query
	// byLabel caches, per tree, the nodes of each label (built lazily).
}

// New returns a Matcher for q.
func New(q *query.Query) *Matcher {
	return &Matcher{q: q}
}

// Roots returns, in increasing order, every tree node v such that the
// query embeds with its root mapped to v.
func (m *Matcher) Roots(t *lingtree.Tree) []int {
	e := newEmbedder(m.q, t)
	var out []int
	rootLabel := m.q.Nodes[0].Label
	for v := range t.Nodes {
		if t.Nodes[v].Label != rootLabel {
			continue
		}
		if e.embeds(0, v) {
			out = append(out, v)
		}
	}
	return out
}

// At reports whether the query embeds with its root mapped to v.
func (m *Matcher) At(t *lingtree.Tree, v int) bool {
	return newEmbedder(m.q, t).embeds(0, v)
}

// embedder carries the memo table for one (query, tree) pair.
type embedder struct {
	q    *query.Query
	t    *lingtree.Tree
	memo []int8 // index qn*len(t.Nodes)+tn; 0 unknown, 1 yes, -1 no
}

func newEmbedder(q *query.Query, t *lingtree.Tree) *embedder {
	return &embedder{q: q, t: t, memo: make([]int8, len(q.Nodes)*len(t.Nodes))}
}

// embeds reports whether the query subtree rooted at qn embeds with qn
// mapped to tree node tn.
func (e *embedder) embeds(qn, tn int) bool {
	idx := qn*len(e.t.Nodes) + tn
	if v := e.memo[idx]; v != 0 {
		return v == 1
	}
	ok := e.compute(qn, tn)
	if ok {
		e.memo[idx] = 1
	} else {
		e.memo[idx] = -1
	}
	return ok
}

func (e *embedder) compute(qn, tn int) bool {
	if e.q.Nodes[qn].Label != e.t.Nodes[tn].Label {
		return false
	}
	qkids := e.q.Nodes[qn].Children
	if len(qkids) == 0 {
		return true
	}
	// Candidate tree nodes per query child.
	cands := make([][]int, len(qkids))
	for i, qc := range qkids {
		var pool []int
		if e.q.Nodes[qc].Axis == query.Child {
			pool = e.t.Nodes[tn].Children
		} else {
			// Proper descendants occupy the contiguous pre-order range
			// (tn, DescEnd(tn)].
			end := e.t.DescEnd(tn)
			pool = make([]int, 0, end-tn)
			for v := tn + 1; v <= end; v++ {
				pool = append(pool, v)
			}
		}
		var cs []int
		for _, v := range pool {
			if e.embeds(qc, v) {
				cs = append(cs, v)
			}
		}
		if len(cs) == 0 {
			return false
		}
		cands[i] = cs
	}
	// Injective assignment of query children to distinct tree nodes:
	// backtracking over children, scarcest candidate list first.
	order := make([]int, len(qkids))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && len(cands[order[j]]) < len(cands[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	used := make(map[int]bool, len(qkids))
	var assign func(k int) bool
	assign = func(k int) bool {
		if k == len(order) {
			return true
		}
		for _, v := range cands[order[k]] {
			if used[v] {
				continue
			}
			used[v] = true
			if assign(k + 1) {
				return true
			}
			delete(used, v)
		}
		return false
	}
	return assign(0)
}

// CountMatches returns the total number of (tree, root) matches of q
// over the given trees.
func CountMatches(trees []*lingtree.Tree, q *query.Query) int {
	m := New(q)
	n := 0
	for _, t := range trees {
		n += len(m.Roots(t))
	}
	return n
}
