package match

import (
	"reflect"
	"testing"

	"repro/internal/corpusgen"
	"repro/internal/lingtree"
	"repro/internal/query"
)

func roots(t *testing.T, tree, q string) []int {
	t.Helper()
	tr := lingtree.MustParse(0, tree)
	return New(query.MustParse(q)).Roots(tr)
}

func TestSimpleChildMatch(t *testing.T) {
	got := roots(t, "(S (NP (NNS agouti)) (VP (VBZ is)))", "S(NP)(VP)")
	if !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("roots = %v", got)
	}
	if got := roots(t, "(S (NP x) (VP y))", "S(VP)(NP)"); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("unordered match failed: %v", got)
	}
	if got := roots(t, "(S (NP x))", "S(NP)(VP)"); got != nil {
		t.Errorf("missing VP still matched: %v", got)
	}
}

func TestSingleNodeQuery(t *testing.T) {
	got := roots(t, "(S (NP (NP x)) (VP y))", "NP")
	if len(got) != 2 {
		t.Errorf("NP roots = %v, want 2 nodes", got)
	}
}

func TestDescendantAxis(t *testing.T) {
	tree := "(S (NP (ADJP (JJ tall))) (VP x))"
	if got := roots(t, tree, "S(//JJ)"); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("S(//JJ) = %v", got)
	}
	if got := roots(t, tree, "S(JJ)"); got != nil {
		t.Errorf("S(JJ) should not match via child axis: %v", got)
	}
	if got := roots(t, tree, "NP(//tall)"); len(got) != 1 {
		t.Errorf("NP(//tall) = %v", got)
	}
	// Descendant axis is proper: a node is not its own descendant.
	if got := roots(t, "(A x)", "A(//A)"); got != nil {
		t.Errorf("A(//A) matched a single A: %v", got)
	}
	if got := roots(t, "(A (A x))", "A(//A)"); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("nested A(//A) = %v", got)
	}
}

func TestSiblingInjectivity(t *testing.T) {
	// A(B)(B) requires two distinct B children.
	if got := roots(t, "(A (B x))", "A(B)(B)"); got != nil {
		t.Errorf("A(B)(B) matched a single B: %v", got)
	}
	if got := roots(t, "(A (B x) (B y))", "A(B)(B)"); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("A(B)(B) over two Bs = %v", got)
	}
	// Injectivity with structure: the two Bs must carry D and E.
	tree := "(A (B (D x)) (B (E y)))"
	if got := roots(t, tree, "A(B(D))(B(E))"); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("A(B(D))(B(E)) = %v", got)
	}
	if got := roots(t, "(A (B (D x) (E y)))", "A(B(D))(B(E))"); got != nil {
		t.Errorf("single B satisfied both branches: %v", got)
	}
}

func TestBacktrackingOrderMatters(t *testing.T) {
	// The greedy choice for the first branch must be undone: B(D) can
	// match b1 or b2, but B(E) only b2, so B(D) must take b1.
	tree := "(A (B (D x) (E y)) (B (D z)))"
	if got := roots(t, tree, "A(B(E))(B(D))"); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("backtracking failed: %v", got)
	}
}

func TestPaperQueryExample(t *testing.T) {
	// Figure 1: the query parse embeds in the sentence parse.
	sentence := "(ROOT (S (NP (DT The) (NNS agouti)) (VP (VBZ is) (NP (DT a) (JJ short-tailed) (, ,) (JJ plant-eating) (NN rodent)))))"
	q := "S(NP(NNS(agouti)))(VP(VBZ(is))(NP(DT(a))(NN)))"
	tr := lingtree.MustParse(0, sentence)
	got := New(query.MustParse(q)).Roots(tr)
	if len(got) != 1 {
		t.Fatalf("agouti query roots = %v, want the S node", got)
	}
	if tr.Nodes[got[0]].Label != "S" {
		t.Errorf("matched label %q", tr.Nodes[got[0]].Label)
	}
}

func TestDeepBranchingExample(t *testing.T) {
	// Example 1 / Figure 5: query A(B(C(D))(C(E)(F))) variants. The
	// anomalous structures from Figure 5(b) must NOT match the query
	// A(B(C(D)(E)(F))) — D, E, F must hang off the same C.
	q := "A(B(C(D)(E)(F)))"
	good := "(A (B (C (D x) (E y) (F z))))"
	bad := "(A (B (C (D x)) (C (E y) (F z))))"
	if got := roots(t, good, q); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("good tree = %v", got)
	}
	if got := roots(t, bad, q); got != nil {
		t.Errorf("anomalous tree matched: %v", got)
	}
}

func TestCountMatches(t *testing.T) {
	trees := []*lingtree.Tree{
		lingtree.MustParse(0, "(S (NP x) (VP y))"),
		lingtree.MustParse(1, "(S (NP (NP a) (NP b)) (VP y))"),
		lingtree.MustParse(2, "(X y)"),
	}
	if got := CountMatches(trees, query.MustParse("NP")); got != 4 {
		t.Errorf("CountMatches(NP) = %d, want 4", got)
	}
	if got := CountMatches(trees, query.MustParse("S(NP)(VP)")); got != 2 {
		t.Errorf("CountMatches(S(NP)(VP)) = %d, want 2", got)
	}
}

func TestMatcherOnGeneratedCorpus(t *testing.T) {
	trees := corpusgen.New(11).Trees(100)
	// ROOT(S) must match every generated tree at its root.
	m := New(query.MustParse("ROOT(S)"))
	for _, tr := range trees {
		got := m.Roots(tr)
		if len(got) != 1 || got[0] != 0 {
			t.Fatalf("tree %d: ROOT(S) roots = %v", tr.TID, got)
		}
	}
	// Something absent never matches.
	if n := CountMatches(trees, query.MustParse("ZZZ(QQQ)")); n != 0 {
		t.Errorf("absent query matched %d times", n)
	}
}

func BenchmarkMatcherCorpus(b *testing.B) {
	trees := corpusgen.New(2).Trees(200)
	q := query.MustParse("VP(VBZ)(NP(DT))")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CountMatches(trees, q)
	}
}
