package corpusgen

import (
	"testing"

	"repro/internal/lingtree"
)

func TestDeterministicAndRandomAccess(t *testing.T) {
	g1 := New(42)
	g2 := New(42)
	// Generate out of order; tree i must not depend on generation order.
	a := g1.Tree(5).String()
	_ = g1.Tree(0)
	b := g2.Tree(5).String()
	if a != b {
		t.Errorf("tree 5 differs across generators:\n%s\n%s", a, b)
	}
	if New(43).Tree(5).String() == a {
		t.Error("different seeds produced identical trees")
	}
	if g1.Tree(6).String() == a {
		t.Error("consecutive trees are identical")
	}
}

func TestGeneratedTreesValid(t *testing.T) {
	g := New(1)
	for _, tr := range g.Trees(200) {
		if err := tr.Validate(); err != nil {
			t.Fatalf("tree %d invalid: %v\n%s", tr.TID, err, tr)
		}
		if tr.Nodes[0].Label != "ROOT" {
			t.Fatalf("tree %d root label %q", tr.TID, tr.Nodes[0].Label)
		}
	}
}

func TestGrammarClosure(t *testing.T) {
	g := newsGrammar()
	v := newVocabularies()
	for lhs, rules := range g {
		if len(rules) == 0 {
			t.Errorf("%s has no rules", lhs)
			continue
		}
		for _, r := range rules {
			if r.weight <= 0 {
				t.Errorf("%s has non-positive weight %v", lhs, r.weight)
			}
			if len(r.rhs) == 0 {
				t.Errorf("%s has empty RHS", lhs)
			}
			for _, s := range r.rhs {
				_, isNT := g[s]
				_, isPT := v[s]
				if !isNT && !isPT {
					t.Errorf("%s -> ... %s: symbol is neither nonterminal nor preterminal", lhs, s)
				}
			}
		}
	}
	// Fallback (first) alternatives must terminate: follow them
	// transitively and require no nonterminal repeats on a path.
	var walk func(sym string, onPath map[string]bool)
	walk = func(sym string, onPath map[string]bool) {
		rules, ok := g[sym]
		if !ok {
			return // preterminal
		}
		if onPath[sym] {
			t.Fatalf("fallback cycle through %s", sym)
		}
		onPath[sym] = true
		for _, s := range rules[0].rhs {
			walk(s, onPath)
		}
		delete(onPath, sym)
	}
	for lhs := range g {
		walk(lhs, map[string]bool{})
	}
}

// TestCorpusShape asserts the structural statistics the paper reports
// for its parsed news corpus, which the substitution argument in
// DESIGN.md depends on.
func TestCorpusShape(t *testing.T) {
	g := New(7)
	st := lingtree.NewStats()
	for _, tr := range g.Trees(2000) {
		st.Observe(tr)
	}
	if ab := st.AvgBranching(); ab < 1.3 || ab > 1.9 {
		t.Errorf("avg branching = %.3f, want ~1.5 (paper: 1.52)", ab)
	}
	if st.MaxBranch > 12 {
		t.Errorf("max branching = %d, want rare/none above ~10", st.MaxBranch)
	}
	if sz := st.AvgTreeSize(); sz < 20 || sz > 200 {
		t.Errorf("avg tree size = %.1f nodes, want news-sentence scale", sz)
	}
	// Branching >10 must be a vanishing fraction of internal nodes.
	over10 := 0
	for b := 11; b < len(st.BranchHist); b++ {
		over10 += st.BranchHist[b]
	}
	if frac := float64(over10) / float64(st.InternalNodes); frac > 0.001 {
		t.Errorf("fraction of internal nodes with branching >10 = %v", frac)
	}
	// Word frequencies must be skewed: the most frequent determiner
	// ("the") should dominate its class.
	if st.LabelFrequency["the"] <= st.LabelFrequency["these"] {
		t.Errorf("Zipf skew missing: freq(the)=%d freq(these)=%d",
			st.LabelFrequency["the"], st.LabelFrequency["these"])
	}
}

func TestDepthBounded(t *testing.T) {
	g := New(99)
	st := lingtree.NewStats()
	for _, tr := range g.Trees(500) {
		st.Observe(tr)
	}
	// The fallback closure can extend a constant number of levels past
	// the recursion limit (longest chain: SBAR -> S -> VP -> NP -> DT ->
	// word), so depth stays bounded regardless of corpus size.
	if st.MaxDepth > DefaultMaxDepth+8 {
		t.Errorf("max depth = %d, want <= %d", st.MaxDepth, DefaultMaxDepth+8)
	}
}

func BenchmarkGenerateTree(b *testing.B) {
	g := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Tree(i)
	}
}
