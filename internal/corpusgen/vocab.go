package corpusgen

import (
	"fmt"
	"math"
	"sort"
)

// vocab is a per-POS-tag word list sampled under a Zipf distribution, so
// corpora exhibit the skewed term frequencies of real news text: a few
// very frequent words (high-selectivity labels in the paper's sense) and
// a long tail of rare ones. The FB query-set's H/M/L frequency classes
// depend on exactly this skew.
type vocab struct {
	words []string
	cum   []float64 // cumulative Zipf weights, normalized to end at 1
}

// zipfExponent controls frequency skew; ~1.1 matches English word
// frequencies closely enough for the index-shape experiments.
const zipfExponent = 1.1

func newVocab(words []string) *vocab {
	v := &vocab{words: words, cum: make([]float64, len(words))}
	total := 0.0
	for i := range words {
		total += 1 / math.Pow(float64(i+1), zipfExponent)
		v.cum[i] = total
	}
	for i := range v.cum {
		v.cum[i] /= total
	}
	return v
}

// sample draws one word.
func (v *vocab) sample(r *rng) string {
	u := r.float64()
	i := sort.SearchFloat64s(v.cum, u)
	if i >= len(v.words) {
		i = len(v.words) - 1
	}
	return v.words[i]
}

// synthWords builds a vocabulary of n words: the given seed words first
// (they receive the highest Zipf ranks, i.e. become the frequent words),
// padded with generated forms prefix0001, prefix0002, ...
func synthWords(seeds []string, prefix string, n int) []string {
	words := append([]string(nil), seeds...)
	for i := 1; len(words) < n; i++ {
		words = append(words, fmt.Sprintf("%s%04d", prefix, i))
	}
	return words[:n]
}

// newVocabularies returns the per-tag word distributions used by the
// generator. Sizes are scaled-down but proportionate to English: open
// classes (nouns, proper nouns, verbs, adjectives) are large, closed
// classes (determiners, prepositions, pronouns) tiny.
func newVocabularies() map[string]*vocab {
	return map[string]*vocab{
		"NN": newVocab(synthWords([]string{
			"year", "time", "government", "company", "president", "state",
			"city", "official", "market", "country", "group", "week",
			"report", "animal", "rodent", "economy", "plan", "leader",
		}, "noun", 1200)),
		"NNS": newVocab(synthWords([]string{
			"people", "years", "officials", "companies", "shares", "states",
			"reports", "animals", "workers", "leaders", "prices", "agoutis",
		}, "nouns", 900)),
		"NNP": newVocab(synthWords([]string{
			"Washington", "China", "Clinton", "Congress", "York", "Bank",
			"Japan", "Europe", "Russia", "Iraq", "Agouti",
		}, "Name", 1600)),
		"VBZ": newVocab(synthWords([]string{
			"is", "says", "has", "remains", "makes", "wants", "seems",
		}, "verbz", 260)),
		"VBD": newVocab(synthWords([]string{
			"said", "was", "had", "made", "announced", "reported", "became",
		}, "verbd", 340)),
		"VB": newVocab(synthWords([]string{
			"be", "make", "take", "help", "keep", "say", "buy",
		}, "verb", 260)),
		"VBG": newVocab(synthWords([]string{
			"being", "making", "rising", "eating", "growing",
		}, "verbg", 160)),
		"VBN": newVocab(synthWords([]string{
			"been", "made", "expected", "known", "reported",
		}, "verbn", 200)),
		"JJ": newVocab(synthWords([]string{
			"new", "last", "other", "economic", "political", "big", "small",
			"short-tailed", "plant-eating", "foreign", "national",
		}, "adj", 600)),
		"RB": newVocab(synthWords([]string{
			"not", "also", "still", "very", "only", "already",
		}, "adv", 260)),
		"DT": newVocab([]string{"the", "a", "an", "this", "that", "some", "no", "any", "each", "these"}),
		"IN": newVocab([]string{
			"of", "in", "for", "on", "with", "at", "by", "from", "as",
			"about", "after", "against", "between", "during", "under",
			"over", "through", "before", "because", "while", "since",
			"although", "if", "that", "whether",
		}),
		"PRP":  newVocab([]string{"it", "he", "they", "she", "we", "i", "you"}),
		"PRP$": newVocab([]string{"its", "his", "their", "her", "our"}),
		"CD": newVocab(synthWords([]string{
			"one", "two", "three", "1990", "10", "100", "million",
		}, "num", 280)),
		"CC":  newVocab([]string{"and", "but", "or", "nor", "yet"}),
		"MD":  newVocab([]string{"will", "would", "could", "can", "may", "should", "must"}),
		"TO":  newVocab([]string{"to"}),
		"POS": newVocab([]string{"'s", "'"}),
		"WP":  newVocab([]string{"who", "what", "whom"}),
		"WDT": newVocab([]string{"which", "that"}),
		"WRB": newVocab([]string{"where", "when", "why", "how"}),
		",":   newVocab([]string{","}),
		".":   newVocab([]string{".", "!", "?"}),
		"EX":  newVocab([]string{"there"}),
		"RP":  newVocab([]string{"up", "out", "down", "off"}),
	}
}
