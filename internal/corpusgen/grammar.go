package corpusgen

// rule is one production of the PCFG: a weighted right-hand side.
type rule struct {
	weight float64
	rhs    []string
}

// grammar maps each nonterminal to its weighted alternatives. The first
// alternative of every nonterminal must be non-recursive: it is the
// fallback used when the depth limit is reached, which guarantees
// generation always terminates.
type grammar map[string][]rule

// newsGrammar is a hand-built constituency grammar over Penn Treebank
// tags, shaped after the productions the Stanford parser emits on news
// text. Weights are tuned so that:
//   - internal nodes average ~1.5 children (paper: 1.52),
//   - branching factors above 10 are vanishingly rare,
//   - sentences yield trees of a few dozen to ~120 nodes,
//   - a small recurring set of productions dominates, so the number of
//     unique subtrees grows roughly linearly in corpus size (Figure 2).
func newsGrammar() grammar {
	return grammar{
		"ROOT": {
			{1, []string{"S"}},
		},
		"S": {
			{0.46, []string{"NP", "VP", "."}},
			{0.18, []string{"NP", "VP"}},
			{0.08, []string{"PP", ",", "NP", "VP", "."}},
			{0.06, []string{"ADVP", ",", "NP", "VP", "."}},
			{0.06, []string{"NP", "VP", ",", "SBAR", "."}},
			{0.05, []string{"SBAR", ",", "NP", "VP", "."}},
			{0.05, []string{"S", "CC", "S"}},
			{0.04, []string{"NP", "ADVP", "VP", "."}},
			{0.02, []string{"EX", "VP", "."}},
		},
		"NP": {
			{0.17, []string{"DT", "NN"}},
			{0.11, []string{"DT", "JJ", "NN"}},
			{0.10, []string{"NNP"}},
			{0.07, []string{"NNP", "NNP"}},
			{0.08, []string{"DT", "NNS"}},
			{0.06, []string{"NNS"}},
			{0.07, []string{"PRP"}},
			{0.12, []string{"NP", "PP"}},
			{0.04, []string{"DT", "NN", "NN"}},
			{0.05, []string{"JJ", "NNS"}},
			{0.03, []string{"NP", "SBAR"}},
			{0.03, []string{"CD", "NNS"}},
			{0.02, []string{"DT", "JJ", "JJ", "NN"}},
			{0.03, []string{"PRP$", "NN"}},
			{0.03, []string{"NP", "POS", "NN"}},
			{0.03, []string{"NN"}},
			{0.02, []string{"NP", ",", "NP", ","}},
			{0.02, []string{"CD", "NN"}},
			{0.02, []string{"DT", "VBG", "NN"}},
		},
		"VP": {
			{0.13, []string{"VBZ", "NP"}},
			{0.15, []string{"VBD", "NP"}},
			{0.06, []string{"VBZ", "ADJP"}},
			{0.05, []string{"VBD", "PP"}},
			{0.09, []string{"VP", "PP"}},
			{0.05, []string{"MD", "VP"}},
			{0.04, []string{"VB", "NP"}},
			{0.05, []string{"VBZ", "SBAR"}},
			{0.05, []string{"VBD", "SBAR"}},
			{0.08, []string{"VBZ", "NP", "PP"}},
			{0.08, []string{"VBD", "NP", "PP"}},
			{0.04, []string{"VBZ"}},
			{0.04, []string{"VBD"}},
			{0.03, []string{"VBZ", "VP"}},
			{0.03, []string{"VBG", "NP"}},
			{0.02, []string{"VBN", "PP"}},
			{0.02, []string{"TO", "VP"}},
			{0.02, []string{"VBD", "RP", "NP"}},
			{0.02, []string{"VBZ", "NP", "NP"}},
		},
		"PP": {
			{0.93, []string{"IN", "NP"}},
			{0.05, []string{"TO", "NP"}},
			{0.02, []string{"IN", "S"}},
		},
		"SBAR": {
			{0.44, []string{"IN", "S"}},
			{0.38, []string{"WHNP", "S"}},
			{0.18, []string{"WHADVP", "S"}},
		},
		"ADJP": {
			{0.58, []string{"JJ"}},
			{0.28, []string{"RB", "JJ"}},
			{0.09, []string{"JJ", "PP"}},
			{0.05, []string{"JJ", "CC", "JJ"}},
		},
		"ADVP": {
			{0.88, []string{"RB"}},
			{0.12, []string{"RB", "RB"}},
		},
		"WHNP": {
			{0.52, []string{"WP"}},
			{0.48, []string{"WDT"}},
		},
		"WHADVP": {
			{1, []string{"WRB"}},
		},
	}
}
