// Package corpusgen generates synthetic syntactically annotated corpora.
//
// The paper evaluates on AQUAINT news text parsed with the Stanford
// parser — resources we do not ship. corpusgen substitutes a seeded PCFG
// over Penn Treebank tags with Zipfian word frequencies, tuned to the
// structural statistics the paper reports for its corpus (mean internal
// branching ≈ 1.5, branching > 10 essentially absent, a compact set of
// recurring productions). All of the paper's results depend only on those
// distributional properties, which the tests in this package assert.
//
// Generation is random-access deterministic: tree i of a corpus with seed
// s is always the same tree, independent of generation order, so corpora
// of different sizes share a prefix (exactly like taking the first N
// sentences of AQUAINT).
package corpusgen

import (
	"repro/internal/lingtree"
)

// Generator produces the trees of one synthetic corpus.
type Generator struct {
	seed     uint64
	grammar  grammar
	vocabs   map[string]*vocab
	maxDepth int
}

// DefaultMaxDepth bounds grammar recursion; deep enough for ~120-node
// trees, shallow enough that generation of any tree is fast.
const DefaultMaxDepth = 11

// New returns a Generator for the corpus identified by seed.
func New(seed uint64) *Generator {
	return &Generator{
		seed:     seed,
		grammar:  newsGrammar(),
		vocabs:   newVocabularies(),
		maxDepth: DefaultMaxDepth,
	}
}

// Tree generates tree number tid of the corpus. The result always has a
// ROOT wrapper node, as Stanford parser output does.
func (g *Generator) Tree(tid int) *lingtree.Tree {
	// Mix the corpus seed and tid so each tree draws an independent,
	// reproducible random stream.
	r := newRNG(g.seed*0x9e3779b97f4a7c15 + uint64(tid)*0xd1b54a32d192ed03 + 0x632be59bd9b4e019)
	b := lingtree.NewBuilder(tid)
	root := b.Add(lingtree.NoParent, "ROOT")
	g.expand(r, b, root, "S", 0)
	return b.Tree()
}

// Trees generates trees [0, n) of the corpus.
func (g *Generator) Trees(n int) []*lingtree.Tree {
	out := make([]*lingtree.Tree, n)
	for i := range out {
		out[i] = g.Tree(i)
	}
	return out
}

// expand adds a node for symbol under parent and recursively expands it.
func (g *Generator) expand(r *rng, b *lingtree.Builder, parent int, symbol string, depth int) {
	v := b.Add(parent, symbol)
	if voc, ok := g.vocabs[symbol]; ok {
		// Preterminal: attach a sampled word as the leaf.
		b.Add(v, voc.sample(r))
		return
	}
	rules, ok := g.grammar[symbol]
	if !ok {
		// Unknown nonterminal: leave as a leaf. Does not happen with the
		// built-in grammar (tests enforce closure) but keeps the
		// generator total for user-supplied grammars.
		return
	}
	var rhs []string
	if depth >= g.maxDepth {
		// Fallback: first alternative is non-recursive by construction.
		rhs = rules[0].rhs
	} else {
		rhs = pick(r, rules)
	}
	for _, s := range rhs {
		g.expand(r, b, v, s, depth+1)
	}
}

// pick samples an alternative proportionally to rule weights.
func pick(r *rng, rules []rule) []string {
	total := 0.0
	for _, rl := range rules {
		total += rl.weight
	}
	u := r.float64() * total
	for _, rl := range rules {
		u -= rl.weight
		if u < 0 {
			return rl.rhs
		}
	}
	return rules[len(rules)-1].rhs
}
