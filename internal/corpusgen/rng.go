package corpusgen

// rng is a small, fast, version-stable PRNG (xorshift64* seeded through
// splitmix64). The corpus must be bit-identical across Go releases so
// experiments and recorded results stay comparable; math/rand makes no
// such guarantee across its implementations, so we carry our own.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	// splitmix64 step guarantees a nonzero, well-mixed state.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return &rng{s: z}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("corpusgen: intn with non-positive n")
	}
	return int(r.next() % uint64(n))
}
