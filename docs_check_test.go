// Documentation checks, run as part of the normal test suite and by
// the CI docs job (`make docs-check`): every relative link in the
// repository's markdown must resolve, and every exported identifier
// must carry a doc comment so the packages read correctly on
// pkg.go.dev.
package repro_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// exportedReceiver reports whether a method's receiver names an
// exported type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch t := typ.(type) {
		case *ast.StarExpr:
			typ = t.X
		case *ast.IndexExpr:
			typ = t.X
		case *ast.IndexListExpr:
			typ = t.X
		case *ast.Ident:
			return t.IsExported()
		default:
			return true // unrecognized shape: stay strict
		}
	}
}

// mdLink matches inline markdown links and images: [text](target).
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// requiredDocs is the documentation set every checkout must carry; a
// doc silently dropped in a refactor fails the suite rather than
// leaving dangling prose references.
var requiredDocs = []string{
	"README.md",
	"docs/ARCHITECTURE.md",
	"docs/LINTING.md",
	"docs/QUERY_SYNTAX.md",
	"docs/SEGMENTS.md",
}

// requiredSections are headings prose elsewhere links to or leans on;
// renaming one must update the anchor and this list together, not
// silently break the cross-references.
var requiredSections = map[string][]string{
	"docs/ARCHITECTURE.md": {
		"## Planning & statistics",
		"## Read path & memory model",
		"## Segments, generations and live updates",
	},
	"docs/LINTING.md": {
		"## The analyzers",
		"## Silencing a finding",
	},
}

// TestRequiredDocsExist asserts the core documentation files exist,
// are non-empty, and carry the load-bearing section headings.
func TestRequiredDocsExist(t *testing.T) {
	for _, doc := range requiredDocs {
		fi, err := os.Stat(doc)
		if err != nil {
			t.Errorf("required doc %s: %v", doc, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("required doc %s is empty", doc)
		}
	}
	for doc, sections := range requiredSections {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("required doc %s: %v", doc, err)
			continue
		}
		for _, heading := range sections {
			if !strings.Contains(string(raw), heading+"\n") {
				t.Errorf("required doc %s lost its %q section", doc, heading)
			}
		}
	}
}

// TestDocLinks walks every *.md file in the repository and asserts
// that each relative link target exists on disk.
func TestDocLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found")
	}
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; a network link checker is out of scope for CI
			}
			if strings.HasPrefix(target, "#") {
				continue // intra-document anchor
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				// Relative links into the repository from badge-style
				// paths (../../actions/...) point at the forge UI, not
				// the tree; tolerate links that escape the repo root.
				if rel, rerr := filepath.Rel(".", resolved); rerr == nil && strings.HasPrefix(rel, "..") {
					continue
				}
				t.Errorf("%s: broken link %q (resolved %s)", md, m[1], resolved)
			}
		}
	}
}

// TestExportedDocs parses every non-test Go file and asserts each
// exported top-level identifier — types, funcs, methods, consts, vars
// — has a doc comment (a group comment covers its members), and that
// every package has a package comment.
func TestExportedDocs(t *testing.T) {
	fset := token.NewFileSet()
	pkgDoc := map[string]bool{}  // package dir -> has package comment
	pkgSeen := map[string]bool{} // package dir -> has any file
	var missing []string

	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		dir := filepath.Dir(path)
		pkgSeen[dir] = true
		if f.Doc != nil {
			pkgDoc[dir] = true
		}
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				// Methods on unexported types are not part of the API
				// surface (sort.Interface impls and the like).
				if decl.Recv != nil && !exportedReceiver(decl.Recv) {
					continue
				}
				if decl.Name.IsExported() && decl.Doc == nil {
					missing = append(missing, fmt.Sprintf("%s: func %s", path, decl.Name.Name))
				}
			case *ast.GenDecl:
				hasGroupDoc := decl.Doc != nil
				for _, spec := range decl.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						if spec.Name.IsExported() && !hasGroupDoc && spec.Doc == nil {
							missing = append(missing, fmt.Sprintf("%s: type %s", path, spec.Name.Name))
						}
					case *ast.ValueSpec:
						if hasGroupDoc || spec.Doc != nil || spec.Comment != nil {
							continue
						}
						for _, name := range spec.Names {
							if name.IsExported() {
								missing = append(missing, fmt.Sprintf("%s: %s", path, name.Name))
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for dir := range pkgSeen {
		if !pkgDoc[dir] {
			missing = append(missing, fmt.Sprintf("%s: no package comment in any file", dir))
		}
	}
	if len(missing) > 0 {
		t.Errorf("%d exported identifiers lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}
