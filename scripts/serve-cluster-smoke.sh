#!/bin/sh
# serve-cluster-smoke: end-to-end distributed-serving check, run by
# CI's serve job and `make serve-cluster-smoke`. Build an index, serve
# it from a leader sisrv, replicate it into a follower sisrv with
# -follow, put a sirouter over the two as one replica group, then
# exercise the failure paths the cluster layer exists for: a replica
# killed mid-stream (the client stream must complete via failover
# resume), admission-control saturation (429 + Retry-After, no
# queueing), and graceful shutdown (SIGTERM drains and exits cleanly).
set -eu

BINS="$(mktemp -d)"
WORK="$(mktemp -d)"
LEADER="127.0.0.1:18091"
FOLLOWER="127.0.0.1:18092"
ROUTER="127.0.0.1:18090"
LEADER_PID=""
FOLLOWER_PID=""
ROUTER_PID=""
STREAM_PID=""
COUNTER_PID=""
cleanup() {
	for p in "$LEADER_PID" "$FOLLOWER_PID" "$ROUTER_PID" "$STREAM_PID" "$COUNTER_PID"; do
		[ -n "$p" ] && kill "$p" 2>/dev/null || true
	done
	rm -rf "$BINS" "$WORK"
}
trap cleanup EXIT

go build -o "$BINS/sibuild" ./cmd/sibuild
go build -o "$BINS/sisrv" ./cmd/sisrv
go build -o "$BINS/sirouter" ./cmd/sirouter

wait_ready() {
	i=0
	while [ "$i" -lt 75 ]; do
		if curl -fsS "http://$1/readyz" >/dev/null 2>&1; then return 0; fi
		i=$((i + 1))
		sleep 0.2
	done
	echo "$2 did not become ready" >&2
	return 1
}

"$BINS/sibuild" -gen 5000 -seed 7 -out "$WORK/leader" -shards 2

# Leader: replication surface needs a segmented index; one live append
# promotes the freshly built one.
"$BINS/sisrv" -index "$WORK/leader" -addr "$LEADER" -limit -1 &
LEADER_PID=$!
wait_ready "$LEADER" "leader sisrv"
curl -fsS --data-binary '(S (NP (NNX zzyzx)) (VP (VBZ is)))' "http://$LEADER/append" \
	| grep -q '"segments":2' || { echo "/append did not promote the leader" >&2; exit 1; }

# Follower: cold directory, converges by pulling the leader's segments.
# -maxinflight 1 so the saturation check below has a bound to hit.
"$BINS/sisrv" -index "$WORK/follower" -follow "http://$LEADER" -sync-every 300ms \
	-addr "$FOLLOWER" -limit -1 -maxinflight 1 &
FOLLOWER_PID=$!
wait_ready "$FOLLOWER" "follower sisrv"
i=0
while [ "$i" -lt 75 ]; do
	if curl -fsS "http://$FOLLOWER/readyz" 2>/dev/null | grep -q '"trees":5001'; then break; fi
	i=$((i + 1))
	sleep 0.2
done
curl -fsS "http://$FOLLOWER/readyz" | grep -q '"trees":5001' || {
	echo "follower never converged to the leader's 5001 trees" >&2; exit 1; }

# Router over the replica pair.
"$BINS/sirouter" -addr "$ROUTER" -nodes "http://$LEADER|http://$FOLLOWER" \
	-limit -1 -health-every 500ms -hedge-after 50ms &
ROUTER_PID=$!
wait_ready "$ROUTER" "sirouter"

Q='S(//NN)'
EXPECT="$(curl -fsS "http://$ROUTER/count?q=$Q" | sed 's/.*"count":\([0-9]*\).*/\1/')"
[ "$EXPECT" -gt 100 ] || { echo "routed count $EXPECT suspiciously small" >&2; exit 1; }
curl -fsS "http://$ROUTER/search?q=$Q&limit=3" | grep -q '"tid"' || {
	echo "routed /search returned no matches" >&2; exit 1; }
curl -fsS -d "{\"queries\":[\"$Q\",\"ZZZ(QQQ)\"]}" "http://$ROUTER/batch" \
	| grep -q '"results"' || { echo "routed /batch failed" >&2; exit 1; }
curl -fsS "http://$ROUTER/stats" | grep -q '"hedges"' || {
	echo "router /stats does not expose the hedge counter" >&2; exit 1; }

# Kill a replica mid-stream: start a rate-limited stream through the
# router (the throttle keeps it on the wire for seconds), kill the
# leader while it is in flight, and require the stream to complete —
# every match line plus a clean summary — from the follower's resume.
curl -sN --limit-rate 40k "http://$ROUTER/stream?q=$Q&limit=-1" > "$WORK/stream.out" &
STREAM_PID=$!
sleep 0.55
# Keep routed counts flowing across the kill: the leader is listed
# first, so while the health probe still believes it is ready every
# count dials it first — whichever count is in flight the instant it
# dies gets a reset, fails over to the follower, and moves the
# router's failover counter no matter how much of the throttled
# stream the kernel had already buffered.
(
	i=0
	while [ "$i" -lt 80 ]; do
		curl -fsS "http://$ROUTER/count?q=$Q" >/dev/null 2>&1 || true
		i=$((i + 1))
	done
) &
COUNTER_PID=$!
sleep 0.15
kill -9 "$LEADER_PID"
LEADER_PID=""
wait "$STREAM_PID" || { echo "client stream broke when the leader died" >&2; exit 1; }
STREAM_PID=""
wait "$COUNTER_PID" 2>/dev/null || true
COUNTER_PID=""
GOT="$(grep -c '"tid"' "$WORK/stream.out" || true)"
[ "$GOT" = "$EXPECT" ] || {
	echo "stream delivered $GOT matches after the kill, want $EXPECT" >&2; exit 1; }
tail -1 "$WORK/stream.out" | grep -q '"done":true' || {
	echo "stream has no summary line" >&2; exit 1; }
tail -1 "$WORK/stream.out" | grep -q '"error"' && {
	echo "stream summary reports an error after failover" >&2; exit 1; }

# The router keeps answering from the surviving replica, and its stats
# record the failover.
curl -fsS "http://$ROUTER/count?q=$Q" | grep -q "\"count\":$EXPECT" || {
	echo "routed /count wrong with the leader dead" >&2; exit 1; }
i=0
while [ "$i" -lt 10 ]; do
	if curl -fsS "http://$ROUTER/stats" | grep -o '"failovers":[0-9]*' \
		| grep -qv '"failovers":0'; then break; fi
	i=$((i + 1))
	sleep 0.3
done
[ "$i" -lt 10 ] || { echo "router /stats recorded no failover" >&2; exit 1; }

# 429 degradation: burst 30 concurrent searches at the follower's
# single admission slot. Some must be admitted (200), the overflow must
# be shed immediately as 429 + Retry-After — never queued.
pids=""
for i in $(seq 1 30); do
	(
		code="$(curl -s -o /dev/null -D "$WORK/h$i" -w '%{http_code}' \
			"http://$FOLLOWER/search?q=$Q&limit=-1")"
		echo "$code" > "$WORK/c$i"
	) &
	pids="$pids $!"
done
for p in $pids; do wait "$p" || true; done
hit=""
served=""
for i in $(seq 1 30); do
	case "$(cat "$WORK/c$i" 2>/dev/null)" in
	429) hit="$i" ;;
	200) served="$i" ;;
	esac
done
[ -n "$served" ] || { echo "saturation burst: nothing was admitted" >&2; exit 1; }
[ -n "$hit" ] || { echo "saturation burst: nothing was shed with 429" >&2; exit 1; }
grep -qi '^Retry-After:' "$WORK/h$hit" || {
	echo "429 carried no Retry-After header" >&2; exit 1; }

# Graceful shutdown: SIGTERM drains and exits 0.
kill -TERM "$FOLLOWER_PID"
wait "$FOLLOWER_PID" || { echo "follower did not shut down cleanly on SIGTERM" >&2; exit 1; }
FOLLOWER_PID=""

echo "serve-cluster-smoke: OK (replication converged, stream survived a replica kill, saturation shed 429s, SIGTERM drained cleanly)"
