#!/bin/sh
# serve-append-smoke: end-to-end segment-lifecycle check, run by CI's
# serve job and `make serve-append-smoke`. Build an index, serve it,
# append through POST /append and verify the very next query sees the
# new tree, append offline with `sibuild -append` and verify POST
# /reload picks the segment up, then walk the rest of the lifecycle:
# POST /delete tombstones the appended tree (next query misses it),
# POST /compact merges the survivors back into one segment — all
# against one server process that never restarts.
set -eu

BINS="$(mktemp -d)"
WORK="$(mktemp -d)"
ADDR="127.0.0.1:18082"
SRV_PID=""
cleanup() {
	[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
	rm -rf "$BINS" "$WORK"
}
trap cleanup EXIT

go build -o "$BINS/sibuild" ./cmd/sibuild
go build -o "$BINS/sisrv" ./cmd/sisrv

"$BINS/sibuild" -gen 400 -seed 7 -out "$WORK/idx" -shards 2

"$BINS/sisrv" -index "$WORK/idx" -addr "$ADDR" &
SRV_PID=$!

ok=0
i=0
while [ "$i" -lt 50 ]; do
	if curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; then ok=1; break; fi
	i=$((i + 1))
	sleep 0.2
done
[ "$ok" = 1 ] || { echo "sisrv did not come up" >&2; exit 1; }

# The probe query matches nothing in the generated corpus.
Q='NNX(zzyzx)'
curl -fsS "http://$ADDR/count?q=$Q" | grep -q '"count":0' || {
	echo "probe query unexpectedly matched before append" >&2; exit 1; }

# Live append over HTTP: searchable on the very next request.
curl -fsS --data-binary '(S (NP (NNX zzyzx)) (VP (VBZ is)))' "http://$ADDR/append" \
	| grep -q '"segments":2' || { echo "/append did not publish a segment" >&2; exit 1; }
curl -fsS "http://$ADDR/count?q=$Q" | grep -q '"count":1' || {
	echo "appended tree not visible to /count" >&2; exit 1; }
curl -fsS "http://$ADDR/search?q=$Q" | grep -q '"tid":400' || {
	echo "appended tree missing from /search (want tid 400)" >&2; exit 1; }
curl -fsS "http://$ADDR/stats" | grep -q '"segments":2' || {
	echo "/stats does not report the new segment" >&2; exit 1; }

# Offline append + zero-downtime reload.
"$BINS/sibuild" -append -gen 50 -seed 99 -out "$WORK/idx"
curl -fsS -X POST "http://$ADDR/reload" | grep -q '"reloaded":true' || {
	echo "/reload did not pick up the external segment" >&2; exit 1; }
curl -fsS "http://$ADDR/healthz" | grep -q '"trees":451' || {
	echo "reloaded corpus size wrong (want 451 trees)" >&2; exit 1; }
curl -fsS "http://$ADDR/stats" | grep -q '"segments":3' || {
	echo "/stats does not report 3 segments after reload" >&2; exit 1; }

# Live delete: the appended probe tree (tid 400) stops matching on the
# very next request, and the stats gauges record the tombstone.
curl -fsS -d '{"tids":[400]}' "http://$ADDR/delete" | grep -q '"deleted":1' || {
	echo "/delete did not tombstone the probe tree" >&2; exit 1; }
curl -fsS "http://$ADDR/count?q=$Q" | grep -q '"count":0' || {
	echo "deleted tree still visible to /count" >&2; exit 1; }
curl -fsS "http://$ADDR/stats" | grep -q '"tombstoned_trees":1' || {
	echo "/stats does not report the tombstoned tree" >&2; exit 1; }

# Compaction: survivors merge into one fresh segment, the tombstoned
# tree is dropped for good, and the corpus renumbers to 450 live trees.
curl -fsS -X POST "http://$ADDR/compact" | grep -q '"compacted":true' || {
	echo "/compact did not run" >&2; exit 1; }
curl -fsS "http://$ADDR/stats" | grep -q '"segments":1' || {
	echo "/stats does not report 1 segment after compaction" >&2; exit 1; }
curl -fsS "http://$ADDR/stats" | grep -q '"tombstoned_trees":0' || {
	echo "/stats still reports tombstones after compaction" >&2; exit 1; }
curl -fsS "http://$ADDR/healthz" | grep -q '"trees":450' || {
	echo "compacted corpus size wrong (want 450 trees)" >&2; exit 1; }
curl -fsS "http://$ADDR/count?q=$Q" | grep -q '"count":0' || {
	echo "deleted tree resurfaced after compaction" >&2; exit 1; }

echo "serve-append-smoke: OK (append + reload + delete + compact served with zero downtime)"
