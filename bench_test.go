// Package repro_test hosts the benchmark harness: one benchmark per
// table and figure of the paper (run the full-scale versions with
// cmd/siexp), plus ablation benches for the design decisions DESIGN.md
// calls out. Benchmarks use bounded corpus sizes so `go test -bench=.`
// completes on a laptop; shapes, not absolute numbers, are the
// reproduction target.
package repro_test

import (
	"context"
	"fmt"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/join"
	"repro/internal/postings"
	"repro/internal/query"
	"repro/internal/workload"
	"repro/si"
)

// benchConfig returns an experiments config sized for benchmarking.
func benchConfig(b *testing.B) experiments.Config {
	return experiments.Config{
		Seed:             2012,
		WorkDir:          b.TempDir(),
		Fig2Sizes:        []int{1, 10, 100, 1000},
		Fig3MinNodes:     20000,
		GridSizes:        []int{100, 400},
		RuntimeSentences: 800,
		RuntimeReps:      1,
		Fig13Sizes:       []int{100, 400, 1600},
	}
}

func runExperiment(b *testing.B, id string) *experiments.Result {
	b.Helper()
	r, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = r.Run(benchConfig(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func BenchmarkFig2UniqueSubtrees(b *testing.B) {
	res := runExperiment(b, "fig2")
	last := res.Rows[len(res.Rows)-1]
	keys, _ := strconv.Atoi(last[5])
	b.ReportMetric(float64(keys), "keys@mss5")
}

func BenchmarkFig3SubtreesVsBranching(b *testing.B) {
	res := runExperiment(b, "fig3")
	b.ReportMetric(float64(len(res.Rows)), "branching-factors")
}

func BenchmarkFig8IndexSize(b *testing.B) {
	res := runExperiment(b, "fig8")
	// Last row = largest corpus, subtree-interval; report mss=5 bytes.
	v, _ := strconv.ParseFloat(res.Rows[len(res.Rows)-1][6], 64)
	b.ReportMetric(v, "interval-bytes@mss5")
}

func BenchmarkTable1SizeRatio(b *testing.B) {
	res := runExperiment(b, "tab1")
	v, _ := strconv.ParseFloat(res.Rows[len(res.Rows)-1][2], 64)
	b.ReportMetric(v, "rootsplit-ratio")
}

func BenchmarkFig9PostingCounts(b *testing.B) {
	res := runExperiment(b, "fig9")
	v, _ := strconv.ParseFloat(res.Rows[len(res.Rows)-1][6], 64)
	b.ReportMetric(v, "interval-postings@mss5")
}

func BenchmarkFig10BuildTime(b *testing.B) {
	runExperiment(b, "fig10")
}

func BenchmarkFig11RuntimeByMatches(b *testing.B) {
	runExperiment(b, "fig11")
}

func BenchmarkFig12RuntimeByQuerySize(b *testing.B) {
	runExperiment(b, "fig12")
}

func BenchmarkTable2SystemComparison(b *testing.B) {
	res := runExperiment(b, "tab2")
	// Speedup of RS over ATreeGrep on the last (HML) class.
	last := res.Rows[len(res.Rows)-1]
	rs, _ := strconv.ParseFloat(last[1], 64)
	atg, _ := strconv.ParseFloat(last[2], 64)
	if rs > 0 {
		b.ReportMetric(atg/rs, "atg/rs-speedup")
	}
}

func BenchmarkFig13Scalability(b *testing.B) {
	runExperiment(b, "fig13")
}

func BenchmarkTable3JoinCounts(b *testing.B) {
	res := runExperiment(b, "tab3")
	v, _ := strconv.ParseFloat(res.Rows[0][1], 64)
	b.ReportMetric(v, "joins-mss2-rootsplit")
}

// --- sharding benches -------------------------------------------------

// BenchmarkShardedBuild times building the generated 10k-tree corpus as
// a single directory vs. 4 concurrently built shards. On a multi-core
// machine the sharded build wins roughly linearly in cores; results are
// asserted identical across shard counts (Count parity) so the timing
// comparison cannot drift from correctness.
func BenchmarkShardedBuild(b *testing.B) {
	trees := si.GenerateCorpus(2012, 10000)
	queries := []string{"NP(DT)(NN)", "S(NP)(VP)", "S(//NN)"}
	want := map[string]int{} // filled by the first sub-benchmark to run
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			opts := si.DefaultBuildOptions()
			opts.Shards = shards
			var dir string
			for i := 0; i < b.N; i++ {
				dir = filepath.Join(b.TempDir(), "ix")
				if _, err := si.Build(dir, trees, opts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ix, err := si.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			if ix.Shards() != shards {
				b.Fatalf("Shards() = %d, want %d", ix.Shards(), shards)
			}
			for _, q := range queries {
				n, err := ix.Count(context.Background(), q)
				if err != nil {
					b.Fatal(err)
				}
				if prev, ok := want[q]; !ok {
					want[q] = n
				} else if n != prev {
					b.Fatalf("shards=%d %s: Count = %d, want %d", shards, q, n, prev)
				}
			}
		})
	}
}

// BenchmarkShardedQuery measures query latency through the 4-shard
// fan-out, uncached (the paper's §6.1 setup) and with a per-shard LRU
// page cache.
func BenchmarkShardedQuery(b *testing.B) {
	trees := si.GenerateCorpus(2012, 4000)
	dir := filepath.Join(b.TempDir(), "ix")
	opts := si.DefaultBuildOptions()
	opts.Shards = 4
	if _, err := si.Build(dir, trees, opts); err != nil {
		b.Fatal(err)
	}
	qs := []string{"NP(DT)(NN)", "VP(VBZ)(NP)", "S(//NN)"}
	for _, cache := range []struct {
		name  string
		bytes int64
	}{{"uncached", 0}, {"cache1MiB", 1 << 20}} {
		b.Run(cache.name, func(b *testing.B) {
			ix, err := si.OpenWith(dir, si.OpenOptions{CacheSize: cache.bytes})
			if err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					if _, err := ix.Search(context.Background(), q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- ablation benches -------------------------------------------------

// BenchmarkAblationRootDedup quantifies §6.2.1's posting deduplication:
// root-split with and without collapsing symmetric instances.
func BenchmarkAblationRootDedup(b *testing.B) {
	trees := si.GenerateCorpus(2012, 500)
	for i := 0; i < b.N; i++ {
		with, err := core.Build(filepath.Join(b.TempDir(), "w"), trees,
			core.Options{MSS: 3, Coding: postings.RootSplit})
		if err != nil {
			b.Fatal(err)
		}
		without, err := core.Build(filepath.Join(b.TempDir(), "wo"), trees,
			core.Options{MSS: 3, Coding: postings.RootSplit, DisableRootDedup: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(without.Postings)/float64(with.Postings), "dedup-saving")
	}
}

// BenchmarkAblationNodeApproach compares the node approach (mss=1, the
// LPath model) with subtree decomposition (mss=3) on the same queries —
// the paper's core speedup claim.
func BenchmarkAblationNodeApproach(b *testing.B) {
	trees := si.GenerateCorpus(2012, 1500)
	qs := []*query.Query{
		query.MustParse("S(NP(DT)(NN))(VP(VBZ))"),
		query.MustParse("VP(VBZ(is))(NP(DT(a)))"),
		query.MustParse("NP(DT(the))(JJ)(NN)"),
	}
	for _, mss := range []int{1, 3} {
		b.Run(fmt.Sprintf("mss%d", mss), func(b *testing.B) {
			dir := filepath.Join(b.TempDir(), "ix")
			if _, err := core.Build(dir, trees, core.Options{MSS: mss, Coding: postings.RootSplit}); err != nil {
				b.Fatal(err)
			}
			ix, err := core.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					if _, err := ix.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationCodingQueryLatency isolates per-coding query cost on
// a fixed corpus and mss (the Figure 11 mechanism, minus binning).
func BenchmarkAblationCodingQueryLatency(b *testing.B) {
	trees := si.GenerateCorpus(2012, 1500)
	q := query.MustParse("S(NP(DT)(NN))(VP(VBZ))")
	for _, coding := range []postings.Coding{postings.FilterBased, postings.RootSplit, postings.SubtreeInterval} {
		b.Run(coding.String(), func(b *testing.B) {
			dir := filepath.Join(b.TempDir(), "ix")
			if _, err := core.Build(dir, trees, core.Options{MSS: 3, Coding: coding}); err != nil {
				b.Fatal(err)
			}
			ix, err := core.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ix.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchBatch compares batched execution against N sequential
// searches on the WH serving workload, whose queries share many cover
// pieces. Beyond latency it asserts the point of batching: the batch
// must issue strictly fewer physical posting-list fetches than the
// sequential runs (checked via the index's fetch counter, not wall
// clock — so the guarantee holds at -benchtime=1x in CI too).
func BenchmarkSearchBatch(b *testing.B) {
	queries := workload.ServerQueries()
	for _, shards := range []int{1, 4} {
		opts := si.DefaultBuildOptions()
		opts.Shards = shards
		dir := filepath.Join(b.TempDir(), fmt.Sprintf("ix%d", shards))
		if _, err := si.Build(dir, si.GenerateCorpus(2012, 3000), opts); err != nil {
			b.Fatal(err)
		}
		ix, err := si.OpenWith(dir, si.OpenOptions{PlanCacheSize: 1024})
		if err != nil {
			b.Fatal(err)
		}
		defer ix.Close()

		// Fetch-count assertion, outside the timed loops.
		base := ix.Stats().PostingFetches
		for _, q := range queries {
			if _, err := ix.Search(context.Background(), q); err != nil {
				b.Fatal(err)
			}
		}
		seqFetches := ix.Stats().PostingFetches - base
		if _, err := ix.SearchBatch(context.Background(), queries); err != nil {
			b.Fatal(err)
		}
		batchFetches := ix.Stats().PostingFetches - base - seqFetches
		if batchFetches >= seqFetches {
			b.Fatalf("shards=%d: batch issued %d posting fetches, sequential %d; batching must fetch strictly less",
				shards, batchFetches, seqFetches)
		}

		b.Run(fmt.Sprintf("sequential/shards=%d", shards), func(b *testing.B) {
			b.ReportMetric(float64(seqFetches), "fetches/op")
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := ix.Search(context.Background(), q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("batched/shards=%d", shards), func(b *testing.B) {
			b.ReportMetric(float64(batchFetches), "fetches/op")
			for i := 0; i < b.N; i++ {
				if _, err := ix.SearchBatch(context.Background(), queries); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStackJoin quantifies the Stack-Tree structural join
// (DESIGN.md §6) against the block-nested merge on //-heavy queries.
func BenchmarkAblationStackJoin(b *testing.B) {
	trees := si.GenerateCorpus(2012, 1500)
	qs := []*query.Query{
		query.MustParse("S(//NN)"),
		query.MustParse("VP(//DT(the))"),
		query.MustParse("ROOT(//PP(IN)(NP))"),
	}
	dir := filepath.Join(b.TempDir(), "ix")
	if _, err := core.Build(dir, trees, core.Options{MSS: 3, Coding: postings.RootSplit}); err != nil {
		b.Fatal(err)
	}
	ix, err := core.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"stack", false}, {"block", true}} {
		b.Run(mode.name, func(b *testing.B) {
			join.DisableStackJoin = mode.disable
			defer func() { join.DisableStackJoin = false }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					if _, err := ix.Query(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- v2 search API benches --------------------------------------------

// BenchmarkCountOnly quantifies the dedicated count path of the v2
// API: Count evaluates the same joins as Search but never materializes
// a match slice, so its allocation volume must drop measurably vs.
// Search-then-len. Run with -benchmem to see allocs/op side by side.
func BenchmarkCountOnly(b *testing.B) {
	dir := filepath.Join(b.TempDir(), "ix")
	if _, err := si.Build(dir, si.GenerateCorpus(2012, 4000), si.DefaultBuildOptions()); err != nil {
		b.Fatal(err)
	}
	ix, err := si.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer ix.Close()
	const q = "NP(DT)(NN)" // high-cardinality: thousands of matches
	res, err := ix.Search(context.Background(), q)
	if err != nil {
		b.Fatal(err)
	}
	want := res.Count
	b.Run("search+len", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := ix.Search(context.Background(), q)
			if err != nil || len(r.Matches) != want {
				b.Fatalf("len = %d (%v), want %d", len(r.Matches), err, want)
			}
		}
	})
	b.Run("count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n, err := ix.Count(context.Background(), q)
			if err != nil || n != want {
				b.Fatalf("Count = %d (%v), want %d", n, err, want)
			}
		}
	})
}

// BenchmarkLimitedSearch is the early-termination claim of the v2 API,
// asserted at both levels of limit pushdown (on counters rather than
// wall clock, so the guarantees hold at -benchtime=1x in CI too):
//
//   - across shards (shards=4): a small limit consults shards lazily
//     and must issue strictly fewer posting fetches than the unlimited
//     fan-out of the same query;
//   - inside a shard (shards=1, where no shard can be skipped): the
//     streaming join must produce strictly fewer join rows than the
//     unlimited run, with no regression in posting fetches.
func BenchmarkLimitedSearch(b *testing.B) {
	const q = "NP(DT)(NN)"
	for _, shards := range []int{1, 4} {
		dir := filepath.Join(b.TempDir(), fmt.Sprintf("ix%d", shards))
		opts := si.DefaultBuildOptions()
		opts.Shards = shards
		if _, err := si.Build(dir, si.GenerateCorpus(2012, 4000), opts); err != nil {
			b.Fatal(err)
		}
		ix, err := si.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		defer ix.Close()

		base := ix.Stats().PostingFetches
		fres, err := ix.Search(context.Background(), q)
		if err != nil {
			b.Fatal(err)
		}
		// Fixture guard: the strictly-fewer assertions below presume the
		// limit is small relative to the result set; a corpus or query
		// change that breaks this should fail here, not look like an
		// engine regression.
		if fres.Count < 100 {
			b.Fatalf("shards=%d: fixture matches only %d times; limit 5 would not be small relative to it", shards, fres.Count)
		}
		fullFetches := ix.Stats().PostingFetches - base
		lres, err := ix.Search(context.Background(), q, si.WithLimit(5))
		if err != nil {
			b.Fatal(err)
		}
		limitedFetches := ix.Stats().PostingFetches - base - fullFetches
		if len(lres.Matches) != 5 || !lres.Stats.Truncated {
			b.Fatalf("shards=%d: limited search returned %d matches truncated=%v",
				shards, len(lres.Matches), lres.Stats.Truncated)
		}
		if shards > 1 && limitedFetches >= fullFetches {
			b.Fatalf("shards=%d: limited search issued %d posting fetches, unlimited %d; want strictly fewer",
				shards, limitedFetches, fullFetches)
		}
		if limitedFetches > fullFetches {
			b.Fatalf("shards=%d: limited search issued %d posting fetches, unlimited %d; limits must not regress fetches",
				shards, limitedFetches, fullFetches)
		}
		if lres.Stats.JoinRows >= fres.Stats.JoinRows {
			b.Fatalf("shards=%d: limited search produced %d join rows, unlimited %d; want strictly fewer",
				shards, lres.Stats.JoinRows, fres.Stats.JoinRows)
		}

		b.Run(fmt.Sprintf("unlimited/shards=%d", shards), func(b *testing.B) {
			b.ReportMetric(float64(fullFetches), "fetches/op")
			b.ReportMetric(float64(fres.Stats.JoinRows), "joinrows/op")
			for i := 0; i < b.N; i++ {
				if _, err := ix.Search(context.Background(), q); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("limit5/shards=%d", shards), func(b *testing.B) {
			b.ReportMetric(float64(limitedFetches), "fetches/op")
			b.ReportMetric(float64(lres.Stats.JoinRows), "joinrows/op")
			for i := 0; i < b.N; i++ {
				if _, err := ix.Search(context.Background(), q, si.WithLimit(5)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
