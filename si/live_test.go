package si_test

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/si"
)

// TestConcurrentAppendSearchProperty is the live-update correctness
// property, run under -race in CI: while appends publish new segments,
// every concurrent search must observe exactly one of the published
// corpus states — matches after an append are the matches before it
// plus the matches in the new trees, with no duplicates or reordering
// from tid rebasing. The generated corpus is prefix-stable, so the
// expected state after each append is the full index's match list
// filtered to the tids published so far.
func TestConcurrentAppendSearchProperty(t *testing.T) {
	trees := si.GenerateCorpus(7, 900)
	cuts := []uint32{500, 700, 900}
	queries := []string{"NP(DT)(NN)", "S(NP)(VP)", "S(//NN)", "PP(IN)(NP)"}

	fullDir := filepath.Join(t.TempDir(), "full")
	if _, err := si.Build(fullDir, trees, si.DefaultBuildOptions()); err != nil {
		t.Fatal(err)
	}
	full, err := si.Open(fullDir)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()

	ctx := context.Background()
	// states[q][k] is the expected match list once tids < cuts[k] are
	// published.
	states := make(map[string][][]si.Match, len(queries))
	for _, q := range queries {
		res, err := full.Search(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count == 0 {
			t.Fatalf("vacuous fixture query %q", q)
		}
		perCut := make([][]si.Match, len(cuts))
		for k, cut := range cuts {
			var ms []si.Match
			for _, m := range res.Matches {
				if m.TID < cut {
					ms = append(ms, m)
				}
			}
			perCut[k] = ms
		}
		states[q] = perCut
	}

	dir := filepath.Join(t.TempDir(), "ix")
	opts := si.DefaultBuildOptions()
	opts.Shards = 2
	if _, err := si.Build(dir, trees[:cuts[0]], opts); err != nil {
		t.Fatal(err)
	}
	ix, err := si.OpenWith(dir, si.OpenOptions{PlanCacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					res, err := ix.Search(ctx, q)
					if err != nil {
						t.Errorf("concurrent search %q: %v", q, err)
						return
					}
					seen := make(map[si.Match]bool, len(res.Matches))
					for _, m := range res.Matches {
						if seen[m] {
							t.Errorf("%q: duplicate match %+v after tid rebasing", q, m)
							return
						}
						seen[m] = true
					}
					okState := false
					for _, want := range states[q] {
						if reflect.DeepEqual(res.Matches, want) {
							okState = true
							break
						}
					}
					if !okState {
						t.Errorf("%q: %d matches correspond to no published corpus state", q, len(res.Matches))
						return
					}
				}
			}(q)
		}
	}

	if _, err := ix.Append(ctx, trees[cuts[0]:cuts[1]]); err != nil {
		t.Fatalf("first append: %v", err)
	}
	if _, err := ix.AppendWith(ctx, trees[cuts[1]:cuts[2]], si.AppendOptions{Shards: 2, Workers: 2}); err != nil {
		t.Fatalf("second append: %v", err)
	}
	close(stop)
	wg.Wait()

	// Steady state: every query sees exactly the full corpus's matches.
	for _, q := range queries {
		res, err := ix.Search(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want := states[q][len(cuts)-1]
		if !reflect.DeepEqual(res.Matches, want) {
			t.Fatalf("%q after all appends: %d matches, want %d", q, len(res.Matches), len(want))
		}
		n, err := ix.Count(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(want) {
			t.Fatalf("%q count after appends = %d, want %d", q, n, len(want))
		}
	}
	if ix.Segments() != 3 || ix.NumTrees() != 900 {
		t.Fatalf("after appends: %d segments over %d trees, want 3 over 900", ix.Segments(), ix.NumTrees())
	}
}

// TestCloseDuringAllIsClean is the Close-vs-search regression test at
// the public API level (run under -race in CI): Close while a /stream-
// style All() iteration is mid-flight must not crash or corrupt the
// iteration — it completes on its pinned segment set — and calls after
// Close fail with a clean ErrClosed instead of dereferencing closed
// pager files.
func TestCloseDuringAllIsClean(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ix")
	opts := si.DefaultBuildOptions()
	opts.Shards = 3
	if _, err := si.Build(dir, si.GenerateCorpus(11, 400), opts); err != nil {
		t.Fatal(err)
	}
	ix, err := si.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const q = "NP(DT)(NN)"
	want, err := ix.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if want.Count < 10 {
		t.Fatalf("vacuous fixture: %d matches", want.Count)
	}

	res, err := ix.SearchStream(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	var got []si.Match
	for m, err := range res.All() {
		if err != nil {
			t.Fatalf("stream under concurrent Close failed: %v", err)
		}
		if got == nil {
			go func() { closed <- ix.Close() }()
		}
		got = append(got, m)
	}
	if err := <-closed; err != nil {
		t.Fatalf("close during stream: %v", err)
	}
	if !reflect.DeepEqual(got, want.Matches) {
		t.Fatalf("stream yielded %d matches under Close, want %d", len(got), want.Count)
	}

	if _, err := ix.Search(ctx, q); !errors.Is(err, si.ErrClosed) {
		t.Fatalf("search after close: %v, want si.ErrClosed", err)
	}
	if _, err := ix.Append(ctx, si.GenerateCorpus(1, 1)); !errors.Is(err, si.ErrClosed) {
		t.Fatalf("append after close: %v, want si.ErrClosed", err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestAppendVisibleWithoutReopen is the acceptance criterion in one
// small test: a query that matches nothing gains matches the moment
// Append returns, on the same open handle.
func TestAppendVisibleWithoutReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ix")
	if _, err := si.Build(dir, si.GenerateCorpus(3, 100), si.DefaultBuildOptions()); err != nil {
		t.Fatal(err)
	}
	ix, err := si.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ctx := context.Background()
	const q = "NNX(zzyzx)"
	if n, err := ix.Count(ctx, q); err != nil || n != 0 {
		t.Fatalf("unique query matched %d before append (err %v)", n, err)
	}
	tr, err := si.ParseTree(0, "(S (NP (NNX zzyzx)) (VP (VBZ is)))")
	if err != nil {
		t.Fatal(err)
	}
	info, err := ix.Append(ctx, []*si.Tree{tr})
	if err != nil {
		t.Fatal(err)
	}
	if info.Keys == 0 {
		t.Fatal("appended segment reports zero keys")
	}
	n, err := ix.Count(ctx, q)
	if err != nil || n != 1 {
		t.Fatalf("unique query matched %d after append (err %v), want 1", n, err)
	}
	res, err := ix.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].TID != 100 {
		t.Fatalf("appended tree matched as %+v, want tid 100", res.Matches)
	}
	if got, err := ix.Tree(100); err != nil || got.TID != 100 {
		t.Fatalf("Tree(100) = %v, %v", got, err)
	}
	if ix.Generation() != 2 || ix.Segments() != 2 {
		t.Fatalf("generation %d segments %d, want 2/2", ix.Generation(), ix.Segments())
	}
}
