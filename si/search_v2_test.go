package si_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/si"
)

// buildSharded builds one corpus into an index with the given shard
// count and opens it.
func buildSharded(t *testing.T, trees []*si.Tree, shards int) *si.Index {
	t.Helper()
	dir := filepath.Join(t.TempDir(), fmt.Sprintf("ix%d", shards))
	opts := si.DefaultBuildOptions()
	opts.Shards = shards
	if _, err := si.Build(dir, trees, opts); err != nil {
		t.Fatal(err)
	}
	ix, err := si.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

var windowQueries = []string{
	"NP(DT)(NN)",
	"S(NP)(VP)",
	"S(//NN)",
	"VP(VBZ)",
	"ZZZ(QQQ)", // no matches
}

// TestLimitIsPrefixOfUnlimited is the property the v2 API promises:
// for every query, limit and offset, Search(limit=N, offset=M) equals
// the window [M, M+N) of the unlimited search — across sharded and
// unsharded indexes, where the sharded path early-terminates.
func TestLimitIsPrefixOfUnlimited(t *testing.T) {
	trees := si.GenerateCorpus(2012, 600)
	ctx := context.Background()
	for _, shards := range []int{1, 4} {
		ix := buildSharded(t, trees, shards)
		for _, q := range windowQueries {
			full, err := ix.Search(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if full.Stats.Truncated || full.Count != len(full.Matches) {
				t.Fatalf("shards=%d %s: unlimited search truncated=%v count=%d len=%d",
					shards, q, full.Stats.Truncated, full.Count, len(full.Matches))
			}
			for _, limit := range []int{1, 2, 7, 100000} {
				for _, offset := range []int{0, 1, 13} {
					res, err := ix.Search(ctx, q, si.WithLimit(limit), si.WithOffset(offset))
					if err != nil {
						t.Fatal(err)
					}
					want := full.Matches
					if offset < len(want) {
						want = want[offset:]
					} else {
						want = nil
					}
					if limit < len(want) {
						want = want[:limit]
					}
					if len(res.Matches) != len(want) {
						t.Fatalf("shards=%d %s limit=%d offset=%d: %d matches, want %d",
							shards, q, limit, offset, len(res.Matches), len(want))
					}
					for i := range want {
						if res.Matches[i] != want[i] {
							t.Fatalf("shards=%d %s limit=%d offset=%d: match %d = %+v, want %+v",
								shards, q, limit, offset, i, res.Matches[i], want[i])
						}
					}
					// A truncated result may undercount but never overcounts,
					// and an untruncated one is exact.
					if res.Stats.Truncated {
						if res.Count > full.Count {
							t.Fatalf("shards=%d %s: truncated count %d > total %d", shards, q, res.Count, full.Count)
						}
					} else if res.Count != full.Count {
						t.Fatalf("shards=%d %s limit=%d offset=%d: untruncated count %d, want %d",
							shards, q, limit, offset, res.Count, full.Count)
					}
				}
			}
		}
	}
}

// TestLimitedSearchFetchesLess is the acceptance criterion: on a
// sharded index, a limit small relative to the full result set must
// issue strictly fewer posting fetches than the unlimited search of
// the same query, observed through si.Stats.
func TestLimitedSearchFetchesLess(t *testing.T) {
	ix := buildSharded(t, si.GenerateCorpus(2012, 2000), 4)
	ctx := context.Background()
	const q = "NP(DT)(NN)" // thousands of matches spread over all shards

	base := ix.Stats().PostingFetches
	full, err := ix.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	fullFetches := ix.Stats().PostingFetches - base
	if full.Count < 100 {
		t.Fatalf("query matches only %d times; the limit would not be small relative to it", full.Count)
	}
	if full.Stats.ShardsConsulted != 4 || full.Stats.PostingFetches != fullFetches {
		t.Fatalf("unlimited stats %+v disagree with counter delta %d", full.Stats, fullFetches)
	}

	res, err := ix.Search(ctx, q, si.WithLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	limitedFetches := ix.Stats().PostingFetches - base - fullFetches
	if limitedFetches >= fullFetches {
		t.Fatalf("limited search issued %d posting fetches, unlimited %d; want strictly fewer",
			limitedFetches, fullFetches)
	}
	if res.Stats.PostingFetches != limitedFetches {
		t.Fatalf("per-query stats report %d fetches, counter delta %d", res.Stats.PostingFetches, limitedFetches)
	}
	if res.Stats.ShardsConsulted >= 4 || !res.Stats.Truncated {
		t.Fatalf("limited search consulted %d shards truncated=%v; want early termination",
			res.Stats.ShardsConsulted, res.Stats.Truncated)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("limited search returned %d matches, want 3", len(res.Matches))
	}
}

// TestLimitedSearchFewerJoinRows is the in-shard half of the
// acceptance criterion: on a SINGLE-shard index — where no shard can
// be skipped — a limited search must still stop early, producing
// strictly fewer join rows than the unlimited run while issuing no
// more posting fetches. This is the streaming join at work: posting
// entries beyond the window are never decoded.
func TestLimitedSearchFewerJoinRows(t *testing.T) {
	ix := buildSharded(t, si.GenerateCorpus(2012, 2000), 1)
	ctx := context.Background()
	const q = "NP(DT)(NN)" // thousands of matches in the one shard

	full, err := ix.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if full.Count < 100 {
		t.Fatalf("query matches only %d times; the limit would not be small relative to it", full.Count)
	}
	res, err := ix.Search(ctx, q, si.WithLimit(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 5 || !res.Stats.Truncated {
		t.Fatalf("limited search returned %d matches truncated=%v", len(res.Matches), res.Stats.Truncated)
	}
	if res.Stats.JoinRows >= full.Stats.JoinRows {
		t.Fatalf("single-shard limited search produced %d join rows, unlimited %d; want strictly fewer",
			res.Stats.JoinRows, full.Stats.JoinRows)
	}
	if res.Stats.PostingFetches > full.Stats.PostingFetches {
		t.Fatalf("limited search issued %d posting fetches, unlimited %d; limits must not regress fetches",
			res.Stats.PostingFetches, full.Stats.PostingFetches)
	}
}

// TestSearchStream asserts the public streaming path: iterating a
// pending result yields exactly the limited Search window, stats
// finalize after the drain, and breaking early keeps later shards
// unconsulted.
func TestSearchStream(t *testing.T) {
	ix := buildSharded(t, si.GenerateCorpus(2012, 800), 4)
	ctx := context.Background()
	const q = "NP(DT)(NN)"
	want, err := ix.Search(ctx, q, si.WithLimit(7), si.WithOffset(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.SearchStream(ctx, q, si.WithLimit(7), si.WithOffset(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != nil {
		t.Fatal("pending result must not carry materialized matches")
	}
	var got []si.Match
	for m, err := range res.All() {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m)
	}
	if len(got) != len(want.Matches) {
		t.Fatalf("stream yielded %d matches, Search %d", len(got), len(want.Matches))
	}
	for i := range got {
		if got[i] != want.Matches[i] {
			t.Fatalf("stream match %d = %+v, want %+v", i, got[i], want.Matches[i])
		}
	}
	if res.Count < len(got)+1 || !res.Stats.Truncated {
		t.Fatalf("finalized count=%d truncated=%v after a limited drain", res.Count, res.Stats.Truncated)
	}

	// Breaking after the first match keeps later shards unconsulted.
	res2, err := ix.SearchStream(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, err := range res2.All() {
		if err != nil {
			t.Fatal(err)
		}
		break
	}
	if res2.Stats.ShardsConsulted >= 4 {
		t.Fatalf("break after one match consulted %d shards", res2.Stats.ShardsConsulted)
	}
}

// TestCountOnlyPath asserts Count and WithCountOnly produce exact
// totals with no match slice, agreeing with the unlimited search.
func TestCountOnlyPath(t *testing.T) {
	trees := si.GenerateCorpus(7, 500)
	ctx := context.Background()
	for _, shards := range []int{1, 3} {
		ix := buildSharded(t, trees, shards)
		for _, q := range windowQueries {
			full, err := ix.Search(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			n, err := ix.Count(ctx, q)
			if err != nil || n != full.Count {
				t.Fatalf("shards=%d %s: Count = %d (%v), want %d", shards, q, n, err, full.Count)
			}
			res, err := ix.Search(ctx, q, si.WithCountOnly())
			if err != nil {
				t.Fatal(err)
			}
			if res.Count != full.Count || res.Matches != nil || res.Stats.Truncated {
				t.Fatalf("shards=%d %s: count-only result %+v, want count %d with nil matches",
					shards, q, res, full.Count)
			}
		}
	}
}

// TestCancelledContext asserts an already-cancelled context returns
// promptly with context.Canceled from every entry point, on sharded
// and unsharded indexes (run under -race by make test).
func TestCancelledContext(t *testing.T) {
	trees := si.GenerateCorpus(11, 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, shards := range []int{1, 3} {
		ix := buildSharded(t, trees, shards)
		if _, err := ix.Search(ctx, "NP(DT)(NN)"); !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d: Search on cancelled ctx: %v, want context.Canceled", shards, err)
		}
		if _, err := ix.Search(ctx, "S(//NN)", si.WithLimit(1)); !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d: limited Search on cancelled ctx: %v", shards, err)
		}
		if _, err := ix.Count(ctx, "NP(DT)(NN)"); !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d: Count on cancelled ctx: %v", shards, err)
		}
		if _, err := ix.SearchBatch(ctx, []string{"NP(DT)", "S(NP)(VP)"}); !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d: SearchBatch on cancelled ctx: %v", shards, err)
		}
		q, err := si.ParseQuery("NP(DT)(NN)")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ix.Query(ctx, q); !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d: Query on cancelled ctx: %v", shards, err)
		}
	}
}

// TestDeadlineExceeded asserts an expired deadline surfaces as
// context.DeadlineExceeded rather than hanging or succeeding.
func TestDeadlineExceeded(t *testing.T) {
	ix := buildSharded(t, si.GenerateCorpus(3, 400), 2)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := ix.Search(ctx, "S(//NN)"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Search past deadline: %v, want context.DeadlineExceeded", err)
	}
}

// TestAllIterator asserts All() streams exactly the materialized
// matches and honors an early break.
func TestAllIterator(t *testing.T) {
	ix := buildSharded(t, si.GenerateCorpus(42, 300), 2)
	res, err := ix.Search(context.Background(), "NP(DT)(NN)", si.WithLimit(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("vacuous: no matches")
	}
	var got []si.Match
	for m, err := range res.All() {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m)
	}
	if len(got) != len(res.Matches) {
		t.Fatalf("All yielded %d matches, want %d", len(got), len(res.Matches))
	}
	for i := range got {
		if got[i] != res.Matches[i] {
			t.Fatalf("All match %d = %+v, want %+v", i, got[i], res.Matches[i])
		}
	}
	n := 0
	for range res.All() {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("break after first yield iterated %d times", n)
	}
}

// TestBatchWindowParity asserts batch results with limits equal
// per-query limited searches.
func TestBatchWindowParity(t *testing.T) {
	trees := si.GenerateCorpus(2012, 400)
	ctx := context.Background()
	for _, shards := range []int{1, 3} {
		ix := buildSharded(t, trees, shards)
		batch, err := ix.SearchBatch(ctx, windowQueries, si.WithLimit(4), si.WithOffset(2))
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range windowQueries {
			single, err := ix.Search(ctx, q, si.WithLimit(4), si.WithOffset(2))
			if err != nil {
				t.Fatal(err)
			}
			if len(batch[i].Matches) != len(single.Matches) {
				t.Fatalf("shards=%d %s: batch window %d matches, single %d",
					shards, q, len(batch[i].Matches), len(single.Matches))
			}
			for j := range single.Matches {
				if batch[i].Matches[j] != single.Matches[j] {
					t.Fatalf("shards=%d %s: batch match %d = %+v, single %+v",
						shards, q, j, batch[i].Matches[j], single.Matches[j])
				}
			}
		}
	}
}
