package si_test

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/si"
)

// TestShardedBuildAndOpen exercises the public sharded path: Build with
// Shards > 1, Open detects the sharded root, and Count is identical
// across shard counts.
func TestShardedBuildAndOpen(t *testing.T) {
	trees := si.GenerateCorpus(42, 500)
	queries := []string{"NP(DT)(NN)", "S(NP)(VP)", "S(//NN)"}

	want := map[string]int{}
	for _, shards := range []int{1, 2, 4} {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("ix%d", shards))
		opts := si.DefaultBuildOptions()
		opts.Shards = shards
		opts.Workers = 2
		if _, err := si.Build(dir, trees, opts); err != nil {
			t.Fatal(err)
		}
		ix, err := si.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer ix.Close()
		if ix.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", ix.Shards(), shards)
		}
		if ix.NumTrees() != len(trees) {
			t.Fatalf("NumTrees = %d", ix.NumTrees())
		}
		for _, q := range queries {
			n, err := ix.Count(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Fatalf("%s: zero matches, vacuous", q)
			}
			if shards == 1 {
				want[q] = n
			} else if n != want[q] {
				t.Errorf("shards=%d %s: Count = %d, want %d", shards, q, n, want[q])
			}
		}
	}
}

// TestConcurrentSearchSharded issues Search and Count from many
// goroutines against one open sharded index with a page cache — the
// -race acceptance test of the issue, at the public API level.
func TestConcurrentSearchSharded(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ix")
	trees := si.GenerateCorpus(7, 400)
	opts := si.DefaultBuildOptions()
	opts.Shards = 4
	if _, err := si.Build(dir, trees, opts); err != nil {
		t.Fatal(err)
	}
	ix, err := si.OpenWith(dir, si.OpenOptions{CacheSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	queries := []string{"NP(DT)(NN)", "S(NP)(VP)", "VP(VBZ)", "S(//NN)"}
	want := make([]int, len(queries))
	for i, q := range queries {
		if want[i], err = ix.Count(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	const goroutines = 24
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				qi := (g + r) % len(queries)
				res, err := ix.Search(context.Background(), queries[qi])
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Matches) != want[qi] {
					t.Errorf("%s: %d matches, want %d", queries[qi], len(res.Matches), want[qi])
				}
				n, err := ix.Count(context.Background(), queries[qi])
				if err != nil || n != want[qi] {
					t.Errorf("%s: Count = %d (%v), want %d", queries[qi], n, err, want[qi])
				}
			}
		}(g)
	}
	wg.Wait()
}
