package si_test

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/si"
)

// TestDeleteCompactPublicAPI walks the whole segment lifecycle through
// the public surface: append, delete (with idempotence and the stats
// gauges moving), compact (renumbering survivors like a fresh build),
// and the threshold-gated no-op.
func TestDeleteCompactPublicAPI(t *testing.T) {
	trees := si.GenerateCorpus(7, 600)
	dir := filepath.Join(t.TempDir(), "idx")
	if _, err := si.Build(dir, trees[:400], si.DefaultBuildOptions()); err != nil {
		t.Fatal(err)
	}
	ix, err := si.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ctx := context.Background()
	if _, err := ix.Append(ctx, trees[400:]); err != nil {
		t.Fatal(err)
	}

	const q = "S(//NN)"
	before, err := ix.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if before.Count == 0 {
		t.Fatalf("vacuous fixture query %q", q)
	}
	victim := before.Matches[0].TID

	deleted, err := ix.Delete(ctx, int(victim))
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 1 {
		t.Fatalf("Delete = %d newly tombstoned, want 1", deleted)
	}
	after, err := ix.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range after.Matches {
		if m.TID == victim {
			t.Fatalf("deleted tree %d still matches", victim)
		}
	}
	if _, err := ix.Tree(int(victim)); err == nil {
		t.Fatalf("Tree(%d) succeeded on a deleted tree", victim)
	}
	st := ix.Stats()
	if st.LiveTrees != 599 || st.TombstonedTrees != 1 {
		t.Fatalf("stats gauges: %d live / %d tombstoned, want 599 / 1", st.LiveTrees, st.TombstonedTrees)
	}
	if st.Segments != ix.Segments() || st.Segments != 2 {
		t.Fatalf("stats report %d segments, handle %d, want 2", st.Segments, ix.Segments())
	}
	// Idempotence through the public surface.
	if deleted, err := ix.Delete(ctx, int(victim)); err != nil || deleted != 0 {
		t.Fatalf("repeated Delete = (%d, %v), want (0, nil)", deleted, err)
	}
	if _, err := ix.Delete(ctx, 600); err == nil {
		t.Fatal("Delete(600) succeeded on an out-of-range tid")
	}

	// Compaction merges to one segment, clears the gauge, and serves the
	// survivors under fresh-build numbering: the corpus is prefix-stable,
	// so every surviving tree with tid > victim slides down by one.
	compacted, err := ix.Compact(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !compacted {
		t.Fatal("Compact reported nothing to do on 2 segments with a tombstone")
	}
	st = ix.Stats()
	if st.LiveTrees != 599 || st.TombstonedTrees != 0 || st.Segments != 1 {
		t.Fatalf("stats after compaction: %d live / %d tombstoned / %d segments, want 599 / 0 / 1",
			st.LiveTrees, st.TombstonedTrees, st.Segments)
	}
	if ix.NumTrees() != 599 {
		t.Fatalf("NumTrees = %d after compaction, want 599", ix.NumTrees())
	}
	got, err := ix.Search(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	var want []si.Match
	for _, m := range before.Matches {
		switch {
		case m.TID == victim:
		case m.TID > victim:
			want = append(want, si.Match{TID: m.TID - 1, Root: m.Root})
		default:
			want = append(want, m)
		}
	}
	if !reflect.DeepEqual(got.Matches, want) {
		t.Fatalf("compacted index returned %d matches, want %d renumbered survivors", len(got.Matches), len(want))
	}

	// Nothing left to do: the default thresholds decline a second run,
	// and raised thresholds decline even with a fresh tombstone.
	if compacted, err := ix.Compact(ctx); err != nil || compacted {
		t.Fatalf("second Compact = (%v, %v), want (false, nil)", compacted, err)
	}
	if _, err := ix.Delete(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if compacted, err := ix.CompactWith(ctx, si.CompactOptions{MinSegments: 4, MinTombstones: 50}); err != nil || compacted {
		t.Fatalf("thresholded CompactWith = (%v, %v), want (false, nil)", compacted, err)
	}
}

// TestUpdatePublicAPI covers the one-publish delete+append combination:
// both effects land together, and the returned build info describes the
// appended segment.
func TestUpdatePublicAPI(t *testing.T) {
	trees := si.GenerateCorpus(11, 300)
	dir := filepath.Join(t.TempDir(), "idx")
	if _, err := si.Build(dir, trees[:250], si.DefaultBuildOptions()); err != nil {
		t.Fatal(err)
	}
	ix, err := si.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ctx := context.Background()
	info, deleted, err := ix.Update(ctx, []int{3, 14, 15}, trees[250:])
	if err != nil {
		t.Fatal(err)
	}
	if deleted != 3 || info.Keys == 0 {
		t.Fatalf("Update = (%d deleted, %d keys in new segment), want 3 deletes and a non-empty build", deleted, info.Keys)
	}
	st := ix.Stats()
	if ix.NumTrees() != 300 || st.LiveTrees != 297 || st.TombstonedTrees != 3 {
		t.Fatalf("after update: %d trees, %d live, %d tombstoned; want 300, 297, 3",
			ix.NumTrees(), st.LiveTrees, st.TombstonedTrees)
	}
	if _, err := ix.Tree(14); err == nil {
		t.Fatal("Tree(14) succeeded after the update deleted it")
	}
	if tr, err := ix.Tree(299); err != nil || tr.TID != 299 {
		t.Fatalf("Tree(299) after the update: %v, %v", tr, err)
	}
	// Pure-delete and no-op shapes of the same call.
	if info, deleted, err := ix.Update(ctx, []int{20}, nil); err != nil || deleted != 1 || info.Keys != 0 {
		t.Fatalf("pure-delete Update = (%+v, %d, %v)", info, deleted, err)
	}
	if _, deleted, err := ix.Update(ctx, []int{20}, nil); err != nil || deleted != 0 {
		t.Fatalf("no-op Update = (%d, %v), want (0, nil)", deleted, err)
	}
}
