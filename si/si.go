// Package si is the public API of the Subtree Index library — an
// implementation of "Efficient Indexing and Querying over Syntactically
// Annotated Trees" (Chubak & Rafiei, PVLDB 5(11), 2012).
//
// The library indexes corpora of constituency parse trees by their
// unique subtrees of sizes 1..MSS and answers tree-structured queries
// with parent-child (/) and ancestor-descendant (//) axes by
// decomposing them into covers and joining posting lists; with the
// default root-split coding no post-validation is needed.
//
// Quick start:
//
//	trees := si.GenerateCorpus(42, 10000) // or si.ReadTrees(file)
//	info, err := si.Build("idx", trees, si.BuildOptions{MSS: 3})
//	ix, err := si.Open("idx")
//	defer ix.Close()
//	matches, err := ix.Search("VP(VBZ(is))(NP(DT(a))(NN))")
//
// See the examples directory for runnable programs.
package si

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/corpusgen"
	"repro/internal/lingtree"
	"repro/internal/postings"
	"repro/internal/query"
	"repro/internal/subtree"
)

// Tree is a syntactically annotated tree: a constituency parse with
// pre/post/level interval numbering. Construct trees with ParseTree,
// ReadTrees or GenerateCorpus.
type Tree = lingtree.Tree

// Query is a parsed tree query; see ParseQuery for the syntax.
type Query = query.Query

// Match is one query result: the tree identifier and the pre-order
// rank of the node the query root matched.
type Match = core.Match

// Key is a flattened canonical subtree, the index key unit.
type Key = subtree.Key

// Coding selects the posting-list scheme of an index.
type Coding = postings.Coding

// The three coding schemes of the paper. RootSplit is the recommended
// default: it stores only each subtree root's structural numbers,
// which makes the index several times smaller than SubtreeInterval and
// queries faster than both alternatives for MSS >= 2.
const (
	FilterBased     = postings.FilterBased
	RootSplit       = postings.RootSplit
	SubtreeInterval = postings.SubtreeInterval
)

// BuildOptions configure index construction.
type BuildOptions struct {
	// MSS is the maximum indexed subtree size, 1..6. Larger values
	// speed up large queries at the cost of index size; the paper
	// recommends 3..5. Zero defaults to 3.
	MSS int
	// Coding selects the posting scheme; the zero value is FilterBased,
	// so set RootSplit explicitly or use DefaultBuildOptions.
	Coding Coding
	// PageSize is the B+Tree page size in bytes (0 = 4096).
	PageSize int
}

// DefaultBuildOptions returns the recommended configuration:
// root-split coding with MSS 3.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{MSS: 3, Coding: RootSplit}
}

// BuildInfo reports what a build produced.
type BuildInfo struct {
	Keys       int   // unique subtrees indexed
	Postings   int   // total posting records
	IndexBytes int64 // B+Tree file size
	DataBytes  int64 // flattened corpus (data file) size
}

// Build constructs a Subtree Index over trees in directory dir,
// overwriting any previous index there. The corpus itself is stored
// alongside the index (the "data file"), so dir is self-contained.
func Build(dir string, trees []*Tree, opts BuildOptions) (BuildInfo, error) {
	if opts.MSS == 0 {
		opts.MSS = 3
	}
	meta, err := core.Build(dir, trees, core.Options{
		MSS:      opts.MSS,
		Coding:   opts.Coding,
		PageSize: opts.PageSize,
	})
	if err != nil {
		return BuildInfo{}, err
	}
	return BuildInfo{
		Keys:       meta.Keys,
		Postings:   meta.Postings,
		IndexBytes: meta.IndexBytes,
		DataBytes:  meta.DataBytes,
	}, nil
}

// Index is an opened Subtree Index.
type Index struct {
	ix *core.Index
}

// Open opens the index stored in dir.
func Open(dir string) (*Index, error) {
	ix, err := core.Open(dir)
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// Close releases the index files.
func (i *Index) Close() error { return i.ix.Close() }

// MSS returns the index's maximum subtree size.
func (i *Index) MSS() int { return i.ix.Meta().MSS }

// Coding returns the index's posting scheme.
func (i *Index) Coding() Coding { return i.ix.Meta().Coding }

// NumTrees returns the number of indexed trees.
func (i *Index) NumTrees() int { return i.ix.Meta().NumTrees }

// Info returns the build statistics of the index.
func (i *Index) Info() BuildInfo {
	m := i.ix.Meta()
	return BuildInfo{Keys: m.Keys, Postings: m.Postings, IndexBytes: m.IndexBytes, DataBytes: m.DataBytes}
}

// Query evaluates a parsed query and returns matches sorted by
// (tree, root).
func (i *Index) Query(q *Query) ([]Match, error) { return i.ix.Query(q) }

// Search parses and evaluates a query in one call.
func (i *Index) Search(querySrc string) ([]Match, error) {
	q, err := ParseQuery(querySrc)
	if err != nil {
		return nil, err
	}
	return i.ix.Query(q)
}

// Count returns only the number of matches of a query.
func (i *Index) Count(querySrc string) (int, error) {
	ms, err := i.Search(querySrc)
	return len(ms), err
}

// Tree fetches an indexed tree by identifier (e.g. to display a match).
func (i *Index) Tree(tid int) (*Tree, error) { return i.ix.Store().Tree(tid) }

// Keys iterates index keys in order starting at start ("" = first),
// with each key's posting count, until fn returns false. Combined with
// subtree statistics this supports mining frequent grammatical
// constructions (see examples/grammarmine).
func (i *Index) Keys(start Key, fn func(k Key, postings int) bool) error {
	return i.ix.Keys(start, fn)
}

// KeyCount returns the posting count of one key (0 when absent).
func (i *Index) KeyCount(k Key) (int, error) { return i.ix.LookupKey(k) }

// ParseQuery parses the textual query syntax: bracketed structure with
// optional // markers for ancestor-descendant edges, e.g.
//
//	NP(DT)(NN)             NP with children DT and NN
//	VP(VBZ(is))            VP -> VBZ -> word "is"
//	S(//NN(rodent))        S with a descendant NN over "rodent"
//	A/B//C                 path shorthand
func ParseQuery(src string) (*Query, error) { return query.Parse(src) }

// ParseTree parses one tree in Penn bracketed form, e.g.
// "(S (NP (NNS agouti)) (VP (VBZ is)))". The assigned identifier is tid.
func ParseTree(tid int, src string) (*Tree, error) {
	return lingtree.ParseBracketed(tid, src)
}

// ReadTrees reads a whole corpus, one bracketed tree per line; blank
// lines and '#' comments are skipped. Identifiers are assigned 0..n-1.
func ReadTrees(r io.Reader) ([]*Tree, error) {
	var out []*Tree
	rd := lingtree.NewReader(r, 0)
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// WriteTree writes one tree in bracketed form followed by a newline.
func WriteTree(w io.Writer, t *Tree) error { return lingtree.WriteBracketed(w, t) }

// GenerateCorpus deterministically generates n synthetic news-like
// parse trees (see internal/corpusgen for the grammar). Two calls with
// the same seed yield identical corpora, and a corpus of size n is a
// prefix of any larger corpus with the same seed.
func GenerateCorpus(seed uint64, n int) []*Tree {
	return corpusgen.New(seed).Trees(n)
}

// KeyOf returns the canonical index key of a child-axis-only query —
// useful with KeyCount for selectivity probing. It errors on queries
// with // edges.
func KeyOf(q *Query) (Key, error) {
	if q.HasDescendantAxis() {
		return "", fmt.Errorf("si: KeyOf requires a //-free query")
	}
	p, _ := q.Pattern(0)
	return p.Key(), nil
}
