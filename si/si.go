// Package si is the public API of the Subtree Index library — an
// implementation of "Efficient Indexing and Querying over Syntactically
// Annotated Trees" (Chubak & Rafiei, PVLDB 5(11), 2012).
//
// The library indexes corpora of constituency parse trees by their
// unique subtrees of sizes 1..MSS and answers tree-structured queries
// with parent-child (/) and ancestor-descendant (//) axes by
// decomposing them into covers and joining posting lists; with the
// default root-split coding no post-validation is needed.
//
// Quick start:
//
//	trees := si.GenerateCorpus(42, 10000) // or si.ReadTrees(file)
//	info, err := si.Build("idx", trees, si.BuildOptions{MSS: 3})
//	ix, err := si.Open("idx")
//	defer ix.Close()
//	res, err := ix.Search(ctx, "VP(VBZ(is))(NP(DT(a))(NN))")
//	for _, m := range res.Matches { ... }
//
// Search is context-first and options-carrying (the v2 API): pass
// WithLimit/WithOffset to page through results — on a sharded index a
// limited search stops fetching posting lists as soon as enough
// matches are merged — and cancel or deadline the context to bound a
// query's cost. Count uses a dedicated count-only path that allocates
// no match slices. The SearchResult reports per-query execution
// statistics (posting fetches, plan-cache hit, shards consulted,
// truncation) and streams matches via All().
//
// For large corpora or serving workloads, BuildOptions.Shards
// partitions the index into independently built shards that queries
// fan out across concurrently, and OpenOptions.CacheSize adds an
// in-process page cache; both default off, matching the paper's
// single-directory, OS-buffered setup. An open Index is safe for
// concurrent use by any number of goroutines.
//
// An index ingests while it serves: Append indexes new trees into a
// fresh immutable segment and publishes it atomically, so the next
// Search sees them without any reopen; Delete tombstones trees so they
// stop matching just as immediately (Update does both in one atomic
// publish); Compact merges the surviving trees back into a single
// segment and reclaims the space; Reload picks up segments and
// tombstones published by another process. Every search runs on the
// segment set current when it started — Append, Delete, Compact and
// Close never disturb a query in flight. See docs/SEGMENTS.md for the
// full lifecycle.
//
// See the examples directory for runnable programs.
package si

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/corpusgen"
	"repro/internal/lingtree"
	"repro/internal/postings"
	"repro/internal/query"
	"repro/internal/subtree"
)

// Tree is a syntactically annotated tree: a constituency parse with
// pre/post/level interval numbering. Construct trees with ParseTree,
// ReadTrees or GenerateCorpus.
type Tree = lingtree.Tree

// Query is a parsed tree query; see ParseQuery for the syntax.
type Query = query.Query

// Match is one query result: the tree identifier and the pre-order
// rank of the node the query root matched.
type Match = core.Match

// Key is a flattened canonical subtree, the index key unit.
type Key = subtree.Key

// Coding selects the posting-list scheme of an index.
type Coding = postings.Coding

// The three coding schemes of the paper. RootSplit is the recommended
// default: it stores only each subtree root's structural numbers,
// which makes the index several times smaller than SubtreeInterval and
// queries faster than both alternatives for MSS >= 2.
const (
	FilterBased     = postings.FilterBased
	RootSplit       = postings.RootSplit
	SubtreeInterval = postings.SubtreeInterval
)

// BuildOptions configure index construction.
type BuildOptions struct {
	// MSS is the maximum indexed subtree size, 1..6. Larger values
	// speed up large queries at the cost of index size; the paper
	// recommends 3..5. Zero defaults to 3.
	MSS int
	// Coding selects the posting scheme; the zero value is FilterBased,
	// so set RootSplit explicitly or use DefaultBuildOptions.
	Coding Coding
	// PageSize is the B+Tree page size in bytes (0 = 4096).
	PageSize int
	// Shards > 1 partitions the corpus by tid into that many contiguous
	// ranges and builds one independent index directory per range,
	// concurrently (shard-0000/, shard-0001/, ...). An index opened from
	// a sharded root fans queries out across shards and merges their
	// tid-sorted results, so results are identical to a single-shard
	// build. 0 or 1 builds the paper's single-directory index.
	Shards int
	// Workers is the number of subtree-extraction goroutines per shard
	// build; 0 or 1 extracts sequentially. The built index bytes do not
	// depend on Workers.
	Workers int
}

// DefaultBuildOptions returns the recommended configuration:
// root-split coding with MSS 3.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{MSS: 3, Coding: RootSplit}
}

// BuildInfo reports what a build produced.
type BuildInfo struct {
	Keys       int   // unique subtrees indexed
	Postings   int   // total posting records
	IndexBytes int64 // B+Tree file size
	DataBytes  int64 // flattened corpus (data file) size
	Shards     int   // partitions actually built (1 = unsharded; may be fewer than requested on tiny corpora)
}

// Build constructs a Subtree Index over trees in directory dir,
// overwriting any previous index there. The corpus itself is stored
// alongside the index (the "data file"), so dir is self-contained.
// With BuildOptions.Shards > 1 the corpus is partitioned by tid and the
// shards are built concurrently.
func Build(dir string, trees []*Tree, opts BuildOptions) (BuildInfo, error) {
	if opts.MSS == 0 {
		opts.MSS = 3
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	meta, err := core.BuildSharded(dir, trees, core.Options{
		MSS:      opts.MSS,
		Coding:   opts.Coding,
		PageSize: opts.PageSize,
		Workers:  opts.Workers,
	}, shards)
	if err != nil {
		return BuildInfo{}, err
	}
	return BuildInfo{
		Keys:       meta.Keys,
		Postings:   meta.Postings,
		IndexBytes: meta.IndexBytes,
		DataBytes:  meta.DataBytes,
		Shards:     max(meta.Shards, 1),
	}, nil
}

// Index is an opened Subtree Index — single-directory, sharded or
// segmented; all layouts open to the same API and return identical
// results. An Index is safe for concurrent use: any number of
// goroutines may call Search, Count, Query, Tree, Keys and KeyCount on
// one Index at once, concurrently with Append and Reload. Every query
// pins the segment set current when it starts, so Append, Reload and
// Close never invalidate an in-flight search; Close blocks until those
// searches finish, and calls made after Close fail cleanly.
type Index struct {
	ix *core.Live
}

// OpenOptions configure how an index is opened.
type OpenOptions struct {
	// CacheSize is the byte budget of an in-process LRU page cache over
	// the index file (per shard when sharded). The default 0 keeps
	// reads uncached, preserving the paper's §6.1 setup where only the
	// operating system buffers pages; serving deployments typically set
	// a few megabytes.
	CacheSize int64
	// PlanCacheSize bounds the in-process LRU cache of compiled query
	// plans — parsed query plus chosen cover decomposition — keyed by
	// query text (raw and canonical, so syntactic variants of one query
	// share an entry). A repeated query skips parsing and decomposition
	// entirely. The default 0 disables plan caching; serving
	// deployments typically set a few thousand entries.
	PlanCacheSize int
	// Mmap selects the read backend for index files. The default
	// (MmapAuto) memory-maps them so page reads are zero-copy subslices
	// of the mapping; MmapOff forces positioned reads. When mapping is
	// unavailable the open silently falls back to pread — results are
	// identical either way.
	Mmap MmapMode
}

// MmapMode selects the index file read backend; see OpenOptions.Mmap.
type MmapMode = core.MmapMode

// Mmap modes for OpenOptions.Mmap.
const (
	// MmapAuto (the default) memory-maps index files when possible.
	MmapAuto = core.MmapAuto
	// MmapOff forces positioned reads.
	MmapOff = core.MmapOff
)

// ErrClosed is returned (wrapped) by operations on an Index after
// Close; test with errors.Is.
var ErrClosed = core.ErrClosed

// Open opens the index stored in dir — sharded or not — with the
// default options (no user-level page cache).
func Open(dir string) (*Index, error) { return OpenWith(dir, OpenOptions{}) }

// OpenWith opens the index stored in dir with explicit options.
func OpenWith(dir string, opts OpenOptions) (*Index, error) {
	ix, err := core.OpenLive(dir, core.OpenOptions{
		CacheSize: opts.CacheSize,
		PlanCache: opts.PlanCacheSize,
		Mmap:      opts.Mmap,
	})
	if err != nil {
		return nil, err
	}
	return &Index{ix: ix}, nil
}

// Close retires the index and blocks until every in-flight search has
// finished on its pinned segment set, then releases the index files.
// Searches started before Close complete correctly; calls made after
// Close return an error instead of touching closed files. Close is
// idempotent.
func (i *Index) Close() error { return i.ix.Close() }

// AppendOptions configure how Append builds its new segment; the zero
// value builds a single-partition segment with sequential extraction.
// The index's MSS and coding always carry over.
type AppendOptions struct {
	// Shards partitions the appended segment like BuildOptions.Shards;
	// 0 or 1 builds one partition. Small incremental batches rarely
	// need more than one.
	Shards int
	// Workers parallelizes subtree extraction like BuildOptions.Workers.
	Workers int
}

// Append indexes trees into a fresh immutable segment and publishes it
// atomically: the call builds the segment with the index's MSS and
// coding, appends it to the on-disk manifest, and swaps the serving
// set, so a search issued after Append returns sees matches in the new
// trees — without reopening the index or restarting a server over it.
// Searches already running finish on the segment set they started
// with, unaffected. The new trees are assigned the global tids
// following the current corpus, in order. Appends serialize with each
// other, Reload and Close; appending through two different processes
// at once is not supported. Returns the new segment's build
// statistics.
func (i *Index) Append(ctx context.Context, trees []*Tree) (BuildInfo, error) {
	return i.AppendWith(ctx, trees, AppendOptions{})
}

// AppendWith is Append with explicit segment build options.
func (i *Index) AppendWith(ctx context.Context, trees []*Tree, opts AppendOptions) (BuildInfo, error) {
	m, err := i.ix.Append(ctx, trees, opts.Shards, opts.Workers)
	if err != nil {
		return BuildInfo{}, err
	}
	return BuildInfo{
		Keys:       m.Keys,
		Postings:   m.Postings,
		IndexBytes: m.IndexBytes,
		DataBytes:  m.DataBytes,
		Shards:     max(m.Shards, 1),
	}, nil
}

// Delete tombstones the trees with the given tids: the manifest is
// republished with the victims recorded as deleted and the serving set
// swaps atomically, so the trees stop matching — in Search, Count,
// SearchBatch, SearchStream, Keys, KeyCount and Tree alike — on the
// very next call, while searches already running finish on the
// snapshot they pinned. Nothing is rewritten: segments are immutable,
// and the tombstoned trees keep occupying disk (and their tids) until
// Compact reclaims them. Deleting an already-deleted tid is an
// idempotent no-op. Returns how many tids were newly tombstoned. An
// out-of-range tid fails the whole call before anything is published.
func (i *Index) Delete(ctx context.Context, tids ...int) (int, error) {
	return i.ix.Delete(ctx, tids)
}

// Update applies deletes and appends new trees in one atomic manifest
// publish — a correction that replaces trees is therefore never
// half-visible: every search sees either the old corpus or the new
// one. deleteTids address the current corpus (the appended trees are
// not deletable in the same call); trees may be nil for a pure delete
// and deleteTids nil for a pure append. Returns the appended segment's
// build statistics (zero when no trees were appended) and the number
// of newly tombstoned tids.
func (i *Index) Update(ctx context.Context, deleteTids []int, trees []*Tree) (BuildInfo, int, error) {
	m, newly, err := i.ix.Update(ctx, deleteTids, trees, 0, 0)
	if err != nil {
		return BuildInfo{}, 0, err
	}
	info := BuildInfo{}
	if m != nil {
		info = BuildInfo{
			Keys:       m.Keys,
			Postings:   m.Postings,
			IndexBytes: m.IndexBytes,
			DataBytes:  m.DataBytes,
			Shards:     max(m.Shards, 1),
		}
	}
	return info, newly, nil
}

// CompactOptions shape a compaction run; the zero value compacts
// whenever there is more than one segment or any tombstoned tree, into
// a single-partition segment.
type CompactOptions struct {
	// Shards partitions the compacted segment like BuildOptions.Shards;
	// 0 or 1 builds one partition.
	Shards int
	// Workers parallelizes subtree extraction like BuildOptions.Workers.
	Workers int
	// MinSegments and MinTombstones gate the run: compaction proceeds
	// when the index has at least MinSegments segments or at least
	// MinTombstones tombstoned trees, and is a no-op otherwise. Zero
	// values default to 2 and 1. Background triggers (sisrv's
	// -compact-every) raise them so small appends are not immediately
	// rewritten.
	MinSegments   int
	MinTombstones int
}

// Compact merges the surviving (non-tombstoned) trees of all segments
// into one fresh segment and publishes it atomically, replacing the
// whole segment list and clearing every tombstone: query fan-out
// returns to a single segment and the disk held by deleted trees and
// replaced segments is reclaimed — each old segment's directory is
// removed once its last in-flight search drains. Searches running
// during the compaction finish on the segment set they pinned.
// Surviving trees are renumbered to contiguous tids 0..n-1 in their
// current order (the tids a fresh Build of the survivors would
// assign), so tids held across a Compact must be re-resolved. Returns
// whether a compaction ran: false with a nil error when the
// CompactOptions thresholds report nothing to do. Compacting away the
// entire corpus is refused.
func (i *Index) Compact(ctx context.Context) (bool, error) {
	return i.CompactWith(ctx, CompactOptions{})
}

// CompactWith is Compact with explicit thresholds and segment build
// options.
func (i *Index) CompactWith(ctx context.Context, opts CompactOptions) (bool, error) {
	changed, _, err := i.ix.Compact(ctx, core.CompactOptions{
		Shards:        opts.Shards,
		Workers:       opts.Workers,
		MinSegments:   opts.MinSegments,
		MinTombstones: opts.MinTombstones,
	})
	return changed, err
}

// Reload re-reads the index manifest from disk and picks up segments
// and tombstones published by another process (e.g. `sibuild -append`
// or `sibuild -delete` run against a directory a server is serving):
// new segments open, delisted ones retire once their in-flight
// searches drain, the tombstone set is replaced, and the serving set
// swaps with zero downtime. Returns whether anything changed.
func (i *Index) Reload() (bool, error) { return i.ix.Reload() }

// Segments returns the number of live index segments: 1 until the
// first Append, plus one per appended (or reloaded) segment since.
func (i *Index) Segments() int { return i.ix.Segments() }

// Generation returns the index manifest's publish counter: 0 for an
// index that has never been appended to, incrementing with every
// published segment-set change.
func (i *Index) Generation() int { return i.ix.Generation() }

// MSS returns the index's maximum subtree size.
func (i *Index) MSS() int { return i.ix.Meta().MSS }

// Coding returns the index's posting scheme.
func (i *Index) Coding() Coding { return i.ix.Meta().Coding }

// NumTrees returns the number of indexed trees.
func (i *Index) NumTrees() int { return i.ix.Meta().NumTrees }

// Shards returns the number of index partitions (1 when unsharded).
func (i *Index) Shards() int { return i.ix.NumShards() }

// Info returns the build statistics of the index.
func (i *Index) Info() BuildInfo {
	m := i.ix.Meta()
	return BuildInfo{Keys: m.Keys, Postings: m.Postings, IndexBytes: m.IndexBytes,
		DataBytes: m.DataBytes, Shards: max(m.Shards, 1)}
}

// SearchOptions bound and shape one search; build them from
// SearchOption values (WithLimit, WithOffset, WithCountOnly). The zero
// value asks for every match. The deadline/cancellation half of the
// options travels in the context.Context every search accepts.
type SearchOptions = core.SearchOpts

// SearchOption is a functional option of Search, Query and SearchBatch.
type SearchOption func(*SearchOptions)

// WithLimit caps the number of matches returned (after any offset);
// n <= 0 means unlimited. The bound pushes down into execution twice
// over: a sharded index consults shards lazily in tid order and stops
// issuing posting fetches once the demand is met, and within each
// shard the streaming join stops decoding posting entries and
// producing intermediate rows as soon as the window is full
// (Stats.JoinRows shows the saving). Small limits over large result
// sets therefore cost a fraction of a full search.
func WithLimit(n int) SearchOption { return func(o *SearchOptions) { o.Limit = n } }

// WithOffset skips the first n matches in global (tree, root) order
// before the limit applies — result paging for serving layers.
func WithOffset(n int) SearchOption { return func(o *SearchOptions) { o.Offset = n } }

// WithCountOnly evaluates the query without materializing any match
// slice: SearchResult.Count is the exact total and Matches stays nil.
// Count is the one-call form.
func WithCountOnly() SearchOption { return func(o *SearchOptions) { o.CountOnly = true } }

// WithExplain asks the search to report how the planner executed it:
// SearchStats gains the chosen strategy, the plan's estimated match
// cardinality, and a per-piece table of estimated vs. actually decoded
// posting entries (SearchStats.Pieces). Explain adds a per-piece
// counter to the hot path, so leave it off in production loops; it is
// ignored by SearchBatch.
func WithExplain() SearchOption { return func(o *SearchOptions) { o.Explain = true } }

// searchOptions folds SearchOption values into a SearchOptions.
func searchOptions(opts []SearchOption) SearchOptions {
	var o SearchOptions
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// SearchResult is the outcome of one search: the requested window of
// Matches in (tree, root) order, the match Count (exact unless
// Stats.Truncated reports early termination), per-query execution
// Stats, and an iterator All(). Search returns it materialized —
// All() then just walks Matches; SearchStream returns it pending —
// All() is the lazily-advancing evaluation itself and Count/Stats
// finalize when it ends.
type SearchResult = core.Result

// SearchStats are per-query execution statistics: posting fetches
// issued, plan-cache hit, shards consulted, and whether the result was
// truncated by a limit. With WithExplain they additionally carry the
// planner's chosen strategy, estimated match cardinality and per-piece
// estimates (see PieceStat).
type SearchStats = core.SearchStats

// PieceStat is one cover piece's explain row: the piece's index key,
// the planner's estimated posting entries, and the entries actually
// decoded during execution. Populated only under WithExplain.
type PieceStat = core.PieceStat

// Query evaluates a parsed query under ctx. Options as in Search.
func (i *Index) Query(ctx context.Context, q *Query, opts ...SearchOption) (*SearchResult, error) {
	return i.ix.SearchQuery(ctx, q, searchOptions(opts))
}

// Search parses and evaluates a query in one call. The context bounds
// evaluation: cancellation and deadlines are checked inside the join
// and scan loops, so an expired ctx aborts promptly with ctx.Err().
// With OpenOptions.PlanCacheSize set, a repeated query string skips
// parsing and decomposition via the plan cache. A limited search
// pushes the bound all the way into the join: evaluation stops
// decoding postings and producing join rows once offset+limit matches
// exist, inside a shard as well as across shards.
//
//	res, err := ix.Search(ctx, "NP(DT)(NN)", si.WithLimit(10))
//	for m, err := range res.All() { ... }
func (i *Index) Search(ctx context.Context, querySrc string, opts ...SearchOption) (*SearchResult, error) {
	return i.ix.Search(ctx, querySrc, searchOptions(opts))
}

// SearchStream parses the query and returns a *pending* SearchResult:
// the call itself only plans, and iterating res.All() is the
// evaluation — each shard's posting blobs are fetched when the
// iteration first reaches that shard, and each step advances the
// streaming join just far enough to yield the next match, so the
// first match is available while most of the work is still undone.
// Shards are consulted strictly in tid order; a consumer that breaks
// early (or a WithLimit bound being reached) leaves later shards
// untouched. res.Count and res.Stats are finalized when the iteration
// ends (also on early break), res.Matches stays nil, and the iterator
// is single-use. Because evaluation is deferred, so are its failures:
// I/O errors, corrupt postings and cancellation surface as the final
// yielded error of All(), not from this call — consumers must check
// the yielded error, or a failed search reads as an empty one. This
// is what sisrv's /stream endpoint uses to put the first NDJSON byte
// on the wire before evaluation completes; prefer Search when the
// whole window is wanted anyway — it overlaps shard evaluation
// instead of streaming them one at a time. WithCountOnly is rejected:
// a count has no streaming form.
func (i *Index) SearchStream(ctx context.Context, querySrc string, opts ...SearchOption) (*SearchResult, error) {
	return i.ix.SearchStream(ctx, querySrc, searchOptions(opts))
}

// SearchBatch evaluates a batch of queries in one pass: all queries
// are planned up front (deduplicating through the plan cache), then
// each distinct cover key's posting list is fetched once per shard for
// the whole batch — on workloads with shared covers this issues
// strictly fewer posting fetches than len(srcs) Search calls.
// Results[i] matches Search(ctx, srcs[i]) with the same options; any
// unparsable query fails the whole batch with an error naming its
// position. Batches optimize fetch sharing rather than early
// termination, so limits apply at the merge.
func (i *Index) SearchBatch(ctx context.Context, srcs []string, opts ...SearchOption) ([]*SearchResult, error) {
	return i.ix.SearchBatch(ctx, srcs, searchOptions(opts))
}

// Count returns the exact number of matches of a query through the
// count-only path: join output is counted directly and no match slice
// is allocated anywhere — cheaper than Search for counting, especially
// on high-cardinality queries (see BenchmarkCountOnly).
func (i *Index) Count(ctx context.Context, querySrc string) (int, error) {
	res, err := i.ix.Search(ctx, querySrc, SearchOptions{CountOnly: true})
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// Stats report an open index's serving state: cumulative counters
// (physical posting-list fetches, join rows, plan-cache activity) plus
// point-in-time gauges of the current segment set — LiveTrees,
// TombstonedTrees, Segments, SegmentBytes — which move with Append,
// Delete and Compact rather than accumulating. The batching benchmarks
// assert on PostingFetches, and sisrv's /stats endpoint reports the
// whole struct.
type Stats = core.Counters

// Stats returns the index's cumulative serving counters since Open.
func (i *Index) Stats() Stats { return i.ix.Counters() }

// Tree fetches an indexed tree by identifier (e.g. to display a match).
func (i *Index) Tree(tid int) (*Tree, error) { return i.ix.Tree(tid) }

// Keys iterates index keys in order starting at start ("" = first),
// with each key's posting count, until fn returns false. Combined with
// subtree statistics this supports mining frequent grammatical
// constructions (see examples/grammarmine).
func (i *Index) Keys(start Key, fn func(k Key, postings int) bool) error {
	return i.ix.Keys(start, fn)
}

// KeyCount returns the posting count of one key (0 when absent).
func (i *Index) KeyCount(k Key) (int, error) { return i.ix.LookupKey(k) }

// ParseQuery parses the textual query syntax: bracketed structure with
// optional // markers for ancestor-descendant edges, e.g.
//
//	NP(DT)(NN)             NP with children DT and NN
//	VP(VBZ(is))            VP -> VBZ -> word "is"
//	S(//NN(rodent))        S with a descendant NN over "rodent"
//	A/B//C                 path shorthand
func ParseQuery(src string) (*Query, error) { return query.Parse(src) }

// ParseTree parses one tree in Penn bracketed form, e.g.
// "(S (NP (NNS agouti)) (VP (VBZ is)))". The assigned identifier is tid.
func ParseTree(tid int, src string) (*Tree, error) {
	return lingtree.ParseBracketed(tid, src)
}

// ReadTrees reads a whole corpus, one bracketed tree per line; blank
// lines and '#' comments are skipped. Identifiers are assigned 0..n-1.
func ReadTrees(r io.Reader) ([]*Tree, error) {
	var out []*Tree
	rd := lingtree.NewReader(r, 0)
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
}

// WriteTree writes one tree in bracketed form followed by a newline.
func WriteTree(w io.Writer, t *Tree) error { return lingtree.WriteBracketed(w, t) }

// GenerateCorpus deterministically generates n synthetic news-like
// parse trees (see internal/corpusgen for the grammar). Two calls with
// the same seed yield identical corpora, and a corpus of size n is a
// prefix of any larger corpus with the same seed.
func GenerateCorpus(seed uint64, n int) []*Tree {
	return corpusgen.New(seed).Trees(n)
}

// KeyOf returns the canonical index key of a child-axis-only query —
// useful with KeyCount for selectivity probing. It errors on queries
// with // edges.
func KeyOf(q *Query) (Key, error) {
	if q.HasDescendantAxis() {
		return "", fmt.Errorf("si: KeyOf requires a //-free query")
	}
	p, _ := q.Pattern(0)
	return p.Key(), nil
}
