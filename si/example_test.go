package si_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/si"
)

// exampleDir returns a unique scratch directory (Example functions have
// no *testing.T, so os.MkdirTemp stands in for t.TempDir; a fixed path
// would collide between parallel test shards on CI).
func exampleDir() string {
	dir, err := os.MkdirTemp("", "si-example-*")
	if err != nil {
		log.Fatal(err)
	}
	return dir
}

// Example demonstrates the build-open-search cycle on a tiny corpus.
func Example() {
	dir := exampleDir()
	defer os.RemoveAll(dir)

	corpus := []string{
		"(ROOT (S (NP (DT The) (NNS agoutis)) (VP (VBZ are) (NP (NNS rodents)))))",
		"(ROOT (S (NP (DT A) (NN dog)) (VP (VBD barked))))",
		"(ROOT (S (NP (NNS Cats)) (VP (VBP sleep))))",
	}
	var trees []*si.Tree
	for i, src := range corpus {
		t, err := si.ParseTree(i, src)
		if err != nil {
			log.Fatal(err)
		}
		trees = append(trees, t)
	}
	if _, err := si.Build(dir, trees, si.DefaultBuildOptions()); err != nil {
		log.Fatal(err)
	}
	ix, err := si.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	n, err := ix.Count(context.Background(), "NP(DT)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("NP with determiner:", n)

	n, err = ix.Count(context.Background(), "S(//NNS)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clauses containing a plural noun:", n)
	// Output:
	// NP with determiner: 2
	// clauses containing a plural noun: 2
}

// ExampleIndex_Search shows match structure — tree id plus the matched
// node, resolved back to the parse — consumed through the streaming
// All() iterator.
func ExampleIndex_Search() {
	dir := exampleDir()
	defer os.RemoveAll(dir)

	t, err := si.ParseTree(0, "(S (NP (NNS agoutis)) (VP (VBZ are) (NP (NNS rodents))))")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := si.Build(dir, []*si.Tree{t}, si.BuildOptions{MSS: 2, Coding: si.RootSplit}); err != nil {
		log.Fatal(err)
	}
	ix, err := si.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	res, err := ix.Search(context.Background(), "NP(NNS)")
	if err != nil {
		log.Fatal(err)
	}
	for m, err := range res.All() {
		if err != nil {
			log.Fatal(err)
		}
		tree, err := ix.Tree(int(m.TID))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tree %d node %d label %s\n", m.TID, m.Root, tree.Nodes[m.Root].Label)
	}
	// Output:
	// tree 0 node 1 label NP
	// tree 0 node 7 label NP
}

// ExampleIndex_SearchBatch shows serving-style evaluation: a page
// cache and plan cache at open time, then a whole batch of queries in
// one call, with shared posting fetches deduplicated across the batch.
func ExampleIndex_SearchBatch() {
	dir := exampleDir()
	defer os.RemoveAll(dir)

	if _, err := si.Build(dir, si.GenerateCorpus(42, 500), si.DefaultBuildOptions()); err != nil {
		log.Fatal(err)
	}
	ix, err := si.OpenWith(dir, si.OpenOptions{
		CacheSize:     1 << 20, // 1 MiB page cache per shard
		PlanCacheSize: 1024,    // compiled query plans
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	queries := []string{"NP(DT)(NN)", "S(NP(DT)(NN))(VP)", "VP(VBZ)(NP(DT)(NN))"}
	results, err := ix.SearchBatch(context.Background(), queries)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("%s: %d matches\n", queries[i], r.Count)
	}
	fmt.Printf("shared covers made the batch cheaper: %v\n",
		ix.Stats().PostingFetches < 3*3) // 3 queries x 3 pieces each, fetched once apiece
	// Output:
	// NP(DT)(NN): 843 matches
	// S(NP(DT)(NN))(VP): 280 matches
	// VP(VBZ)(NP(DT)(NN)): 104 matches
	// shared covers made the batch cheaper: true
}

// ExampleParseQuery shows the accepted query syntax.
func ExampleParseQuery() {
	for _, src := range []string{
		"NP(DT)(NN)",
		"S(NP)(//PP(IN(of)))",
		"A/B//C",
	} {
		q, err := si.ParseQuery(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s has %d nodes, descendant axis: %v\n", q, q.Size(), q.HasDescendantAxis())
	}
	// Output:
	// NP(DT)(NN) has 3 nodes, descendant axis: false
	// S(NP)(//PP(IN(of))) has 5 nodes, descendant axis: true
	// A(B(//C)) has 3 nodes, descendant axis: true
}
