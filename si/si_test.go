package si_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/si"
)

func buildSmall(t *testing.T, opts si.BuildOptions) *si.Index {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "idx")
	trees := si.GenerateCorpus(11, 200)
	info, err := si.Build(dir, trees, opts)
	if err != nil {
		t.Fatal(err)
	}
	if info.Keys == 0 || info.Postings == 0 || info.IndexBytes == 0 {
		t.Fatalf("empty build info: %+v", info)
	}
	ix, err := si.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func TestPublicAPIRoundTrip(t *testing.T) {
	ix := buildSmall(t, si.DefaultBuildOptions())
	if ix.MSS() != 3 || ix.Coding() != si.RootSplit || ix.NumTrees() != 200 {
		t.Errorf("meta: mss=%d coding=%v trees=%d", ix.MSS(), ix.Coding(), ix.NumTrees())
	}
	res, err := ix.Search(context.Background(), "NP(DT)(NN)")
	if err != nil {
		t.Fatal(err)
	}
	ms := res.Matches
	if len(ms) == 0 {
		t.Fatal("no matches for a common construction")
	}
	if res.Count != len(ms) || res.Stats.Truncated {
		t.Errorf("unlimited search: Count = %d, truncated = %v", res.Count, res.Stats.Truncated)
	}
	n, err := ix.Count(context.Background(), "NP(DT)(NN)")
	if err != nil || n != len(ms) {
		t.Errorf("Count = %d, %v", n, err)
	}
	// Fetch the matched tree and verify the root label.
	tr, err := ix.Tree(int(ms[0].TID))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Nodes[ms[0].Root].Label; got != "NP" {
		t.Errorf("match root label = %q", got)
	}
	if _, err := ix.Search(context.Background(), "NP((("); err == nil {
		t.Error("bad query accepted")
	}
}

func TestDefaultMSS(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "idx")
	trees := si.GenerateCorpus(1, 20)
	if _, err := si.Build(dir, trees, si.BuildOptions{Coding: si.RootSplit}); err != nil {
		t.Fatal(err)
	}
	ix, err := si.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.MSS() != 3 {
		t.Errorf("default MSS = %d, want 3", ix.MSS())
	}
}

func TestParseAndWriteTrees(t *testing.T) {
	src := "(S (NP (NNS agouti)) (VP (VBZ is)))\n# c\n(A b)\n"
	trees, err := si.ReadTrees(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("trees = %d", len(trees))
	}
	var sb strings.Builder
	for _, tr := range trees {
		if err := si.WriteTree(&sb, tr); err != nil {
			t.Fatal(err)
		}
	}
	back, err := si.ReadTrees(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back[0].String() != trees[0].String() {
		t.Error("round trip differs")
	}
	if _, err := si.ParseTree(0, "(broken"); err == nil {
		t.Error("bad tree accepted")
	}
}

func TestKeysAndSelectivity(t *testing.T) {
	ix := buildSmall(t, si.DefaultBuildOptions())
	q, err := si.ParseQuery("NP(DT)")
	if err != nil {
		t.Fatal(err)
	}
	key, err := si.KeyOf(q)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ix.KeyCount(key)
	if err != nil || n == 0 {
		t.Errorf("KeyCount(%q) = %d, %v", key, n, err)
	}
	// // queries have no single key.
	qd, _ := si.ParseQuery("NP(//DT)")
	if _, err := si.KeyOf(qd); err == nil {
		t.Error("KeyOf accepted a // query")
	}
	count := 0
	if err := ix.Keys("", func(si.Key, int) bool { count++; return count < 10 }); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("iterated %d keys", count)
	}
}

func TestAllCodingsViaPublicAPI(t *testing.T) {
	for _, coding := range []si.Coding{si.FilterBased, si.RootSplit, si.SubtreeInterval} {
		ix := buildSmall(t, si.BuildOptions{MSS: 2, Coding: coding})
		res, err := ix.Search(context.Background(), "S(NP)(VP)")
		if err != nil {
			t.Fatalf("%v: %v", coding, err)
		}
		if len(res.Matches) == 0 {
			t.Errorf("%v: no matches", coding)
		}
	}
}
