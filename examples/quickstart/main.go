// Quickstart: build a small Subtree Index over a synthetic parsed
// corpus and run a few structural queries against it.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/si"
)

func main() {
	dir := filepath.Join(os.TempDir(), "si-quickstart")
	defer os.RemoveAll(dir)

	// 1. A corpus of parse trees. Real corpora load with si.ReadTrees;
	// here we generate a synthetic news-like one.
	trees := si.GenerateCorpus(42, 2000)
	fmt.Printf("corpus: %d parsed sentences\n", len(trees))
	fmt.Printf("first sentence parse:\n  %s\n\n", trees[0])

	// 2. Build the index: root-split coding, subtrees up to 3 nodes.
	info, err := si.Build(dir, trees, si.DefaultBuildOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index: %d keys, %d postings, %d KiB on disk\n\n",
		info.Keys, info.Postings, info.IndexBytes/1024)

	// Open in serving configuration: an in-process page cache keeps hot
	// B+Tree pages in memory and a plan cache skips re-parsing and
	// re-decomposing repeated queries. (Plain si.Open keeps both off,
	// the paper's measurement setup.)
	ix, err := si.OpenWith(dir, si.OpenOptions{
		CacheSize:     4 << 20, // 4 MiB page cache per shard
		PlanCacheSize: 1024,    // compiled query plans
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	// 3. Structural queries: children with (), descendants with //.
	for _, q := range []string{
		"NP(DT)(NN)",       // noun phrase with determiner and noun
		"VP(VBZ(is))",      // "is" as a present-tense verb
		"S(NP)(VP(//PP))",  // clause whose predicate contains a PP
		"NP(DT(the))(NNS)", // "the" + plural noun
	} {
		res, err := ix.Search(context.Background(), q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %6d matches", q, res.Count)
		if len(res.Matches) > 0 {
			t, err := ix.Tree(int(res.Matches[0].TID))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   e.g. tree %d: %.60s...", res.Matches[0].TID, t.String())
		}
		fmt.Println()
	}

	// 4. The same queries as one batch: queries are planned up front and
	// posting lists shared between them are fetched once — fewer disk
	// reads than four sequential searches (ix.Stats() proves it).
	before := ix.Stats().PostingFetches
	results, err := ix.SearchBatch(context.Background(), []string{
		"NP(DT)(NN)", "VP(VBZ(is))", "S(NP)(VP(//PP))", "NP(DT(the))(NNS)",
	})
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, r := range results {
		total += r.Count
	}
	fmt.Printf("\nbatch of 4 queries: %d total matches with %d posting fetches\n",
		total, ix.Stats().PostingFetches-before)

	// 5. Serving-style access: a bounded window of matches under a
	// deadline. The context cancels evaluation if it overruns, and on a
	// sharded index the limit stops posting fetches early.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := ix.Search(ctx, "NP(DT)(NN)", si.WithLimit(3), si.WithOffset(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst window of NP(DT)(NN) after offset 1 (truncated=%v):\n", res.Stats.Truncated)
	for m, err := range res.All() {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  tree %d node %d\n", m.TID, m.Root)
	}
}
