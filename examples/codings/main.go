// Codings builds the same corpus under all three posting codings and
// compares index size, build time and query latency — a miniature of
// the paper's Figures 8, 10 and 11.
//
//	go run ./examples/codings
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/si"
)

func main() {
	base := filepath.Join(os.TempDir(), "si-codings")
	defer os.RemoveAll(base)

	trees := si.GenerateCorpus(42, 3000)
	queries := []string{
		"NP(DT)(NN)",
		"S(NP(DT)(NN))(VP(VBZ))",
		"VP(VBZ(is))(NP(DT(a)))",
		"S(NP)(VP(//PP(IN)))",
	}

	fmt.Printf("%-18s %10s %10s %12s %12s\n",
		"coding", "keys", "KiB", "build", "query(mean)")
	for _, coding := range []si.Coding{si.FilterBased, si.RootSplit, si.SubtreeInterval} {
		dir := filepath.Join(base, coding.String())
		start := time.Now()
		info, err := si.Build(dir, trees, si.BuildOptions{MSS: 3, Coding: coding})
		if err != nil {
			log.Fatal(err)
		}
		buildTime := time.Since(start)

		ix, err := si.Open(dir)
		if err != nil {
			log.Fatal(err)
		}
		qStart := time.Now()
		reps := 5
		for r := 0; r < reps; r++ {
			for _, q := range queries {
				if _, err := ix.Search(context.Background(), q); err != nil {
					log.Fatal(err)
				}
			}
		}
		perQuery := time.Since(qStart) / time.Duration(reps*len(queries))
		ix.Close()

		fmt.Printf("%-18s %10d %10d %12v %12v\n",
			coding, info.Keys, info.IndexBytes/1024,
			buildTime.Round(time.Millisecond), perQuery.Round(time.Microsecond))
	}
	fmt.Println("\npaper's shape: filter-based smallest/fastest-to-build but needs")
	fmt.Println("validation at query time; subtree-interval largest; root-split")
	fmt.Println("close to filter-based in size yet fastest to query.")
}
