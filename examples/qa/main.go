// QA demonstrates the paper's §1 motivating scenario: answering
// "What kind of animal is agouti?" by matching the parse of the
// declarative form "agouti is a ..." against a parsed corpus, instead
// of keyword search.
//
//	go run ./examples/qa
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/si"
)

func main() {
	dir := filepath.Join(os.TempDir(), "si-qa")
	defer os.RemoveAll(dir)

	// A corpus with one planted answer sentence among synthetic news
	// (Figure 1(b) of the paper, as parsed by the Stanford parser).
	trees := si.GenerateCorpus(7, 3000)
	answer, err := si.ParseTree(len(trees),
		"(ROOT (S (NP (DT The) (NNS agouti)) (VP (VBZ is) (NP (DT a) (JJ short-tailed) (JJ plant-eating) (NN rodent)))))")
	if err != nil {
		log.Fatal(err)
	}
	trees = append(trees, answer)

	if _, err := si.Build(dir, trees, si.BuildOptions{MSS: 3, Coding: si.RootSplit}); err != nil {
		log.Fatal(err)
	}
	ix, err := si.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	// The parse of the query "agouti is a", with the answer position
	// left as a bare NN constraint (Figure 1(a)).
	queries := []string{
		"S(NP(NNS(agouti)))(VP(VBZ(is))(NP(DT(a))(NN)))",
		// A looser variant: any clause linking "agouti" to some noun.
		"S(NP(//agouti))(VP(VBZ(is))(//NN))",
	}
	for _, qs := range queries {
		res, err := ix.Search(context.Background(), qs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %s\n  -> %d sentence(s)\n", qs, res.Count)
		for _, m := range res.Matches {
			t, err := ix.Tree(int(m.TID))
			if err != nil {
				log.Fatal(err)
			}
			// The answer is the NN under the matched clause: find the
			// last NN leaf's word in the matched subtree.
			fmt.Printf("  tree %d: %s\n", m.TID, t)
			fmt.Printf("  answer word: %q\n", answerNoun(t))
		}
	}
}

// answerNoun extracts the word under the last NN tag — the "rodent"
// position in the paper's example.
func answerNoun(t *si.Tree) string {
	word := ""
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.Label == "NN" && len(n.Children) == 1 {
			word = t.Nodes[n.Children[0]].Label
		}
	}
	return word
}
