// Grammarmine scans the Subtree Index key space to mine the most
// frequent grammatical constructions of each size — the kind of
// corpus-linguistics workload the paper's future-work section points
// at (subtree statistics), enabled here by B+Tree range iteration.
//
//	go run ./examples/grammarmine
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/si"
)

func main() {
	dir := filepath.Join(os.TempDir(), "si-grammarmine")
	defer os.RemoveAll(dir)

	trees := si.GenerateCorpus(42, 4000)
	if _, err := si.Build(dir, trees, si.BuildOptions{MSS: 4, Coding: si.RootSplit}); err != nil {
		log.Fatal(err)
	}
	ix, err := si.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	type kc struct {
		key   si.Key
		count int
	}
	bySize := map[int][]kc{}
	if err := ix.Keys("", func(k si.Key, count int) bool {
		// Key size is the leading integer of the first token ("4:NP ...").
		size := 0
		for i := 0; i < len(k) && k[i] >= '0' && k[i] <= '9'; i++ {
			size = size*10 + int(k[i]-'0')
		}
		bySize[size] = append(bySize[size], kc{k, count})
		return true
	}); err != nil {
		log.Fatal(err)
	}

	for size := 2; size <= 4; size++ {
		ks := bySize[size]
		sort.Slice(ks, func(i, j int) bool { return ks[i].count > ks[j].count })
		fmt.Printf("top constructions with %d nodes (of %d unique):\n", size, len(ks))
		for i := 0; i < 8 && i < len(ks); i++ {
			fmt.Printf("  %7d  %s\n", ks[i].count, ks[i].key)
		}
		fmt.Println()
	}
	fmt.Println("(keys are pre-order size:label tokens; e.g. \"3:NP 1:DT 1:NN\"")
	fmt.Println(" is the classic determiner-noun NP)")
}
