package repro_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/planner"
	"repro/si"
)

// skewQuery pairs one frequent piece (NN, in every fixture tree) with
// one rare piece (RB, in exactly 2 of 400 trees): the shape where a
// cost-based join order pays off hardest, because fetching the rare
// piece first aborts three of the four shards after a single point
// read and keeps the joining shard's intermediate rows tiny.
const skewQuery = "S(//NN)(//RB)"

// loadSkewCorpus reads the committed skewed-cardinality fixture.
func loadSkewCorpus(tb testing.TB) []*si.Tree {
	tb.Helper()
	f, err := os.Open("testdata/skew.trees")
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	trees, err := si.ReadTrees(f)
	if err != nil {
		tb.Fatal(err)
	}
	if len(trees) != 400 {
		tb.Fatalf("skew fixture holds %d trees, want 400", len(trees))
	}
	return trees
}

// buildSkewIndex builds the fixture as a 4-shard index so the rare RB
// trees (tids 0-1) land in shard 0 only.
func buildSkewIndex(tb testing.TB) string {
	tb.Helper()
	dir := filepath.Join(tb.TempDir(), "ix")
	opts := si.DefaultBuildOptions()
	opts.Shards = 4
	if _, err := si.Build(dir, loadSkewCorpus(tb), opts); err != nil {
		tb.Fatal(err)
	}
	return dir
}

// runSkew evaluates the skew query once under the given planner mode,
// returning the matches with the physical posting fetches and join
// rows the evaluation cost.
func runSkew(tb testing.TB, dir string, syntactic bool) (matches []si.Match, fetches, joinRows uint64) {
	tb.Helper()
	planner.UseSyntacticOrder = syntactic
	defer func() { planner.UseSyntacticOrder = false }()
	ix, err := si.Open(dir)
	if err != nil {
		tb.Fatal(err)
	}
	defer ix.Close()
	base := ix.Stats().PostingFetches
	res, err := ix.Search(context.Background(), skewQuery)
	if err != nil {
		tb.Fatal(err)
	}
	return res.Matches, ix.Stats().PostingFetches - base, res.Stats.JoinRows
}

// TestPlannerSkewCostOrder is the planner's headline claim on the
// committed fixture: cost-ordered execution must report strictly fewer
// posting fetches AND strictly fewer join rows than the syntactic-order
// ablation, while returning the identical matches. The same counters
// are reported by BenchmarkPlannerSkew and gated in BENCH_baseline.json.
func TestPlannerSkewCostOrder(t *testing.T) {
	dir := buildSkewIndex(t)
	costM, costFetches, costRows := runSkew(t, dir, false)
	synM, synFetches, synRows := runSkew(t, dir, true)

	if len(costM) == 0 {
		t.Fatalf("%q matches nothing on the fixture", skewQuery)
	}
	if !reflect.DeepEqual(costM, synM) {
		t.Fatalf("cost-ordered matches differ from syntactic: %d vs %d", len(costM), len(synM))
	}
	if costFetches >= synFetches {
		t.Fatalf("cost order issued %d posting fetches, syntactic %d; want strictly fewer", costFetches, synFetches)
	}
	if costRows >= synRows {
		t.Fatalf("cost order produced %d join rows, syntactic %d; want strictly fewer", costRows, synRows)
	}
}

// BenchmarkPlannerSkew quantifies statistics-driven planning on the
// committed skewed fixture, reporting the deterministic work counters
// (guarded in BENCH_baseline.json) alongside wall clock for both modes.
func BenchmarkPlannerSkew(b *testing.B) {
	dir := buildSkewIndex(b)
	for _, mode := range []struct {
		name      string
		syntactic bool
	}{{"cost", false}, {"syntactic", true}} {
		b.Run(mode.name, func(b *testing.B) {
			_, fetches, rows := runSkew(b, dir, mode.syntactic)
			planner.UseSyntacticOrder = mode.syntactic
			defer func() { planner.UseSyntacticOrder = false }()
			ix, err := si.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			b.ResetTimer() // also clears extras, so the counters report below
			for i := 0; i < b.N; i++ {
				if _, err := ix.Search(context.Background(), skewQuery); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(fetches), "fetches/op")
			b.ReportMetric(float64(rows), "joinrows/op")
		})
	}
}
